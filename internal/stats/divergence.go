package stats

import (
	"errors"
	"math"
	"sort"
)

// The divergence measures in this file implement the paper's §5.1 proposal:
// "metrics need to be developed to evaluate data veracity ... statistical
// metrics such as Kullback–Leibler divergence can be applied to compare the
// similarity between two distributions."
//
// All functions operate on probability vectors (non-negative, summing to ~1).
// Callers that start from frequency tables should use AlignedProbabilities.

// ErrLengthMismatch is returned when two probability vectors have different
// lengths and therefore cannot be compared.
var ErrLengthMismatch = errors.New("stats: probability vectors have different lengths")

// smoothing is the epsilon mixed into distributions before computing
// KL-style divergences, so that zero bins do not produce infinities. The
// value trades a small bias for robustness; it is documented in
// EXPERIMENTS.md wherever divergences are reported.
const smoothing = 1e-10

func smooth(p []float64) []float64 {
	out := make([]float64, len(p))
	total := 0.0
	for i, v := range p {
		if v < 0 {
			v = 0
		}
		out[i] = v + smoothing
		total += out[i]
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// KLDivergence returns D_KL(p || q) in nats, with epsilon smoothing so the
// result is always finite. It is asymmetric: D(p||q) != D(q||p).
func KLDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, ErrLengthMismatch
	}
	ps, qs := smooth(p), smooth(q)
	d := 0.0
	for i := range ps {
		d += ps[i] * math.Log(ps[i]/qs[i])
	}
	if d < 0 {
		d = 0 // numerical residue
	}
	return d, nil
}

// JSDivergence returns the Jensen–Shannon divergence, a smoothed symmetric
// variant of KL bounded by ln(2).
func JSDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, ErrLengthMismatch
	}
	ps, qs := smooth(p), smooth(q)
	m := make([]float64, len(ps))
	for i := range ps {
		m[i] = (ps[i] + qs[i]) / 2
	}
	dpm, _ := KLDivergence(ps, m)
	dqm, _ := KLDivergence(qs, m)
	return (dpm + dqm) / 2, nil
}

// TotalVariation returns the total variation distance: half the L1 distance
// between p and q, in [0, 1].
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, ErrLengthMismatch
	}
	d := 0.0
	for i := range p {
		d += math.Abs(p[i] - q[i])
	}
	return d / 2, nil
}

// HellingerDistance returns the Hellinger distance between p and q, in [0, 1].
func HellingerDistance(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, ErrLengthMismatch
	}
	s := 0.0
	for i := range p {
		d := math.Sqrt(p[i]) - math.Sqrt(q[i])
		s += d * d
	}
	return math.Sqrt(s / 2), nil
}

// ChiSquare returns Pearson's chi-square statistic of observed counts o
// against expected counts e (both raw counts, not probabilities). Bins with
// zero expectation are skipped.
func ChiSquare(o, e []float64) (float64, error) {
	if len(o) != len(e) {
		return 0, ErrLengthMismatch
	}
	s := 0.0
	for i := range o {
		if e[i] <= 0 {
			continue
		}
		d := o[i] - e[i]
		s += d * d / e[i]
	}
	return s, nil
}

// CosineSimilarity returns the cosine of the angle between p and q, in
// [0, 1] for non-negative vectors. 1 means identical direction.
func CosineSimilarity(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, ErrLengthMismatch
	}
	var dot, np, nq float64
	for i := range p {
		dot += p[i] * q[i]
		np += p[i] * p[i]
		nq += q[i] * q[i]
	}
	if np == 0 || nq == 0 {
		return 0, nil
	}
	return dot / (math.Sqrt(np) * math.Sqrt(nq)), nil
}

// EarthMover1D returns the 1-dimensional earth mover's (Wasserstein-1)
// distance between two probability vectors over the same ordered support,
// measured in bins: the cumulative-difference formulation.
func EarthMover1D(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, ErrLengthMismatch
	}
	var cum, d float64
	for i := range p {
		cum += p[i] - q[i]
		d += math.Abs(cum)
	}
	return d, nil
}

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic: the
// maximum distance between the empirical CDFs of samples a and b. The inputs
// are raw samples, not probabilities.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var i, j int
	var d float64
	for i < len(as) && j < len(bs) {
		switch {
		case as[i] < bs[j]:
			i++
		case as[i] > bs[j]:
			j++
		default:
			// Advance both pointers past the tied value so ties do not
			// create a phantom CDF gap.
			v := as[i]
			for i < len(as) && as[i] == v {
				i++
			}
			for j < len(bs) && bs[j] == v {
				j++
			}
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}
