package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram is a fixed-width binned histogram over [Min, Max). Values below
// Min and at or above Max are tallied separately (Under, Over) rather than
// folded into the edge bins, so the bin counts describe only the histogram's
// actual domain. It is the workhorse behind per-column table statistics and
// distribution comparison.
type Histogram struct {
	Min, Max float64
	Counts   []uint64
	total    uint64
	under    uint64
	over     uint64
}

// NewHistogram creates a histogram with bins equal-width buckets on
// [min, max). It panics if bins <= 0 or max <= min.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram bins must be positive")
	}
	if max <= min {
		panic("stats: NewHistogram max must exceed min")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]uint64, bins)}
}

// Observe records one value. Out-of-range values are counted in Under/Over
// instead of polluting the first/last bins.
func (h *Histogram) Observe(v float64) {
	h.total++
	if v < h.Min {
		h.under++
		return
	}
	if v >= h.Max {
		h.over++
		return
	}
	idx := int((v - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
}

// Total returns the number of observed values, including out-of-range ones.
func (h *Histogram) Total() uint64 { return h.total }

// Under returns the number of observations below Min.
func (h *Histogram) Under() uint64 { return h.under }

// Over returns the number of observations at or above Max.
func (h *Histogram) Over() uint64 { return h.over }

// InRange returns the number of observations inside [Min, Max).
func (h *Histogram) InRange() uint64 { return h.total - h.under - h.over }

// Probabilities returns the bin frequencies normalized over the in-range
// observations, so the vector is a proper distribution over the histogram's
// domain regardless of out-of-range mass. If no observation landed in range
// it returns a uniform distribution, which keeps divergence computations
// well-defined for degenerate inputs.
func (h *Histogram) Probabilities() []float64 {
	p := make([]float64, len(h.Counts))
	inRange := h.InRange()
	if inRange == 0 {
		for i := range p {
			p[i] = 1 / float64(len(p))
		}
		return p
	}
	for i, c := range h.Counts {
		p[i] = float64(c) / float64(inRange)
	}
	return p
}

// ExtendedProbabilities returns the distribution over bins+2 cells: the
// under-range mass first, the bin frequencies, then the over-range mass, all
// normalized by the total observation count. Unlike Probabilities it
// accounts for every observation, so comparing two histograms with the same
// bounds also penalizes mass that fell outside them. Empty histograms yield
// a uniform vector.
func (h *Histogram) ExtendedProbabilities() []float64 {
	p := make([]float64, len(h.Counts)+2)
	if h.total == 0 {
		for i := range p {
			p[i] = 1 / float64(len(p))
		}
		return p
	}
	p[0] = float64(h.under) / float64(h.total)
	for i, c := range h.Counts {
		p[i+1] = float64(c) / float64(h.total)
	}
	p[len(p)-1] = float64(h.over) / float64(h.total)
	return p
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) by linear
// interpolation within the containing bin. The rank is taken over all
// observations including out-of-range ones: a quantile falling in the
// under-range (over-range) mass is reported as Min (Max), the tightest
// bound the histogram can state for values it has no bins for.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	if h.under > 0 && target <= float64(h.under) {
		return h.Min
	}
	cum := float64(h.under)
	width := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.Min + (float64(i)+frac)*width
		}
		cum = next
	}
	return h.Max
}

// Merge adds other's counts into h. The histograms must have identical
// bounds and bin counts.
func (h *Histogram) Merge(other *Histogram) error {
	if h.Min != other.Min || h.Max != other.Max || len(h.Counts) != len(other.Counts) {
		return fmt.Errorf("stats: cannot merge histograms with different shape")
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.total += other.total
	h.under += other.under
	h.over += other.over
	return nil
}

// FreqTable counts occurrences of discrete string values — e.g. words in a
// corpus or categories in a column — and converts them into aligned
// probability vectors for divergence computations.
type FreqTable struct {
	Counts map[string]uint64
	total  uint64
}

// NewFreqTable returns an empty frequency table.
func NewFreqTable() *FreqTable {
	return &FreqTable{Counts: make(map[string]uint64)}
}

// Observe records one occurrence of key.
func (f *FreqTable) Observe(key string) {
	f.Counts[key]++
	f.total++
}

// ObserveN records n occurrences of key.
func (f *FreqTable) ObserveN(key string, n uint64) {
	f.Counts[key] += n
	f.total += n
}

// Total returns the total number of observations.
func (f *FreqTable) Total() uint64 { return f.total }

// Distinct returns the number of distinct keys.
func (f *FreqTable) Distinct() int { return len(f.Counts) }

// TopK returns the k most frequent keys in descending count order.
func (f *FreqTable) TopK(k int) []string {
	keys := make([]string, 0, len(f.Counts))
	for key := range f.Counts {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		ci, cj := f.Counts[keys[i]], f.Counts[keys[j]]
		if ci != cj {
			return ci > cj
		}
		return keys[i] < keys[j]
	})
	if k < len(keys) {
		keys = keys[:k]
	}
	return keys
}

// AlignedProbabilities returns probability vectors for f and g over the
// union of their keys, in a deterministic key order. The vectors are
// suitable inputs for KLDivergence and friends.
func AlignedProbabilities(f, g *FreqTable) (p, q []float64) {
	keys := make(map[string]struct{}, len(f.Counts)+len(g.Counts))
	for k := range f.Counts {
		keys[k] = struct{}{}
	}
	for k := range g.Counts {
		keys[k] = struct{}{}
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	p = make([]float64, len(ordered))
	q = make([]float64, len(ordered))
	for i, k := range ordered {
		if f.total > 0 {
			p[i] = float64(f.Counts[k]) / float64(f.total)
		}
		if g.total > 0 {
			q[i] = float64(g.Counts[k]) / float64(g.total)
		}
	}
	return p, q
}

// LatencyHistogram records durations in exponentially sized buckets,
// giving HDR-style constant relative error from microseconds to minutes with
// a small fixed footprint. It is the backing store for the latency
// percentiles bdbench reports as user-perceivable metrics.
type LatencyHistogram struct {
	counts [buckets]uint64
	total  uint64
	sum    time.Duration
	max    time.Duration
}

// 64 sub-buckets per power of two, from 1us granularity up to ~1.2 hours.
const (
	subBucketBits = 6
	subBuckets    = 1 << subBucketBits
	ranges        = 32
	buckets       = ranges * subBuckets
)

// bucketIndex maps a duration in microseconds to a bucket.
func bucketIndex(us uint64) int {
	if us < subBuckets {
		return int(us)
	}
	// Position of the highest bit beyond the sub-bucket resolution.
	exp := 63 - subBucketBits
	for us>>(uint(exp)+subBucketBits) == 0 {
		exp--
	}
	// exp is now such that us >> exp is in [subBuckets, 2*subBuckets).
	r := exp + 1
	if r >= ranges {
		r = ranges - 1
	}
	mantissa := us >> uint(r)
	if mantissa >= subBuckets {
		mantissa = subBuckets - 1
	}
	return r*subBuckets + int(mantissa)
}

// bucketValue returns a representative duration for bucket i (bucket start).
func bucketValue(i int) time.Duration {
	r := i / subBuckets
	m := uint64(i % subBuckets)
	if r == 0 {
		return time.Duration(m) * time.Microsecond
	}
	return time.Duration(m<<uint(r)) * time.Microsecond
}

// Observe records one duration.
func (l *LatencyHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d / time.Microsecond)
	l.counts[bucketIndex(us)]++
	l.total++
	l.sum += d
	if d > l.max {
		l.max = d
	}
}

// Count returns the number of recorded durations.
func (l *LatencyHistogram) Count() uint64 { return l.total }

// Sum returns the total of all recorded durations (exact, not
// bucket-approximated) — the basis of wall-time accounting such as the
// data-generation metric family.
func (l *LatencyHistogram) Sum() time.Duration { return l.sum }

// Mean returns the mean recorded duration.
func (l *LatencyHistogram) Mean() time.Duration {
	if l.total == 0 {
		return 0
	}
	return l.sum / time.Duration(l.total)
}

// Max returns the largest recorded duration.
func (l *LatencyHistogram) Max() time.Duration { return l.max }

// Quantile returns the q-quantile (0..1) of recorded durations.
func (l *LatencyHistogram) Quantile(q float64) time.Duration {
	if l.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(l.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range l.counts {
		cum += c
		if cum >= target {
			return bucketValue(i)
		}
	}
	return l.max
}

// Merge adds other's samples into l.
func (l *LatencyHistogram) Merge(other *LatencyHistogram) {
	for i, c := range other.counts {
		l.counts[i] += c
	}
	l.total += other.total
	l.sum += other.sum
	if other.max > l.max {
		l.max = other.max
	}
}
