package stats

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependentOfConsumption(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	// Consume some of b's stream before splitting; children must agree.
	for i := 0; i < 17; i++ {
		b.Uint64()
	}
	ca := a.Split("chunk", 3)
	cb := b.Split("chunk", 3)
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatalf("split children diverged at step %d", i)
		}
	}
}

func TestSplitChildrenDiffer(t *testing.T) {
	g := NewRNG(7)
	c0 := g.Split("chunk", 0)
	c1 := g.Split("chunk", 1)
	cother := g.Split("other", 0)
	if c0.Uint64() == c1.Uint64() && c0.Uint64() == c1.Uint64() {
		t.Fatal("children with different indexes produced identical streams")
	}
	if c0.Seed() == cother.Seed() {
		t.Fatal("children with different labels share a seed")
	}
}

func TestRandomWordLengths(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		w := g.RandomWord(3, 9)
		if len(w) < 3 || len(w) > 9 {
			t.Fatalf("word %q out of requested length range", w)
		}
	}
}

func TestRandomWordDegenerateBounds(t *testing.T) {
	g := NewRNG(1)
	if w := g.RandomWord(0, 0); len(w) != 1 {
		t.Fatalf("RandomWord(0,0) = %q, want single letter", w)
	}
	if w := g.RandomWord(5, 2); len(w) != 5 {
		t.Fatalf("RandomWord(5,2) = %q, want length clamped to min", w)
	}
}

func TestMix64IsBijectiveOnSample(t *testing.T) {
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		m := Mix64(i)
		if prev, ok := seen[m]; ok {
			t.Fatalf("Mix64 collision: %d and %d both map to %d", prev, i, m)
		}
		seen[m] = i
	}
}

func TestFNV64Stable(t *testing.T) {
	if FNV64("bdbench") != FNV64("bdbench") {
		t.Fatal("FNV64 is not stable")
	}
	if FNV64("a") == FNV64("b") {
		t.Fatal("FNV64 trivial collision")
	}
}

func TestBoolProbability(t *testing.T) {
	g := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) hit fraction %.4f, want ~0.25", frac)
	}
}

func TestQuickSplitDeterminism(t *testing.T) {
	f := func(seed uint64, idx uint8) bool {
		a := NewRNG(seed).Split("x", int(idx))
		b := NewRNG(seed).Split("x", int(idx))
		return a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
