package stats

import "math"

// GammaSample draws a Gamma(shape, 1) variate using the Marsaglia–Tsang
// squeeze method, with the standard boost for shape < 1. Gamma variates are
// the building block for Dirichlet sampling, which the LDA text generator
// uses to draw per-document topic mixtures.
func GammaSample(g *RNG, shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := g.Float64()
		for u == 0 {
			u = g.Float64()
		}
		return GammaSample(g, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// DirichletSample draws a probability vector from Dirichlet(alpha) by
// normalizing independent Gamma variates.
func DirichletSample(g *RNG, alpha []float64) []float64 {
	out := make([]float64, len(alpha))
	total := 0.0
	for i, a := range alpha {
		out[i] = GammaSample(g, a)
		total += out[i]
	}
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// SymmetricDirichletSample draws from Dirichlet(alpha, ..., alpha) with k
// components.
func SymmetricDirichletSample(g *RNG, alpha float64, k int) []float64 {
	a := make([]float64, k)
	for i := range a {
		a[i] = alpha
	}
	return DirichletSample(g, a)
}
