package stats

import (
	"sync"
	"testing"
	"time"
)

// TestAtomicLatencyMatchesSequential is the shard pipeline's core
// correctness claim: N concurrent writers into one atomic histogram produce
// exactly the counts/sum/max a sequential baseline produces.
func TestAtomicLatencyMatchesSequential(t *testing.T) {
	const writers, perWriter = 8, 2000
	var concurrent AtomicLatencyHistogram
	var baseline LatencyHistogram
	durations := make([][]time.Duration, writers)
	for w := range durations {
		g := NewRNG(uint64(100 + w))
		durations[w] = make([]time.Duration, perWriter)
		for i := range durations[w] {
			durations[w][i] = time.Duration(g.IntN(1<<22)) * time.Microsecond
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, d := range durations[w] {
				concurrent.Observe(d)
			}
		}(w)
	}
	wg.Wait()
	for _, ds := range durations {
		for _, d := range ds {
			baseline.Observe(d)
		}
	}
	snap := concurrent.Snapshot()
	if snap.Count() != baseline.Count() {
		t.Fatalf("count %d, want %d", snap.Count(), baseline.Count())
	}
	if snap.Mean() != baseline.Mean() {
		t.Fatalf("mean %v, want %v", snap.Mean(), baseline.Mean())
	}
	if snap.Max() != baseline.Max() {
		t.Fatalf("max %v, want %v", snap.Max(), baseline.Max())
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got, want := snap.Quantile(q), baseline.Quantile(q); got != want {
			t.Fatalf("q%.2f %v, want %v", q, got, want)
		}
	}
}

// TestLatencyMergeInvariants: merging shards preserves count, sum, max and
// quantiles exactly versus observing everything into one histogram.
func TestLatencyMergeInvariants(t *testing.T) {
	g := NewRNG(7)
	var whole LatencyHistogram
	parts := make([]*AtomicLatencyHistogram, 4)
	for i := range parts {
		parts[i] = &AtomicLatencyHistogram{}
	}
	for i := 0; i < 5000; i++ {
		d := time.Duration(g.IntN(1<<24)) * time.Microsecond
		whole.Observe(d)
		parts[i%len(parts)].Observe(d)
	}
	var merged LatencyHistogram
	for _, p := range parts {
		merged.Merge(p.Snapshot())
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", merged.Count(), whole.Count())
	}
	if merged.Mean() != whole.Mean() {
		t.Fatalf("merged mean %v, want %v", merged.Mean(), whole.Mean())
	}
	if merged.Max() != whole.Max() {
		t.Fatalf("merged max %v, want %v", merged.Max(), whole.Max())
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
			t.Fatalf("merged q%.2f = %v, want %v", q, got, want)
		}
	}
}

// TestAtomicLatencySnapshotDuringWrites exercises Snapshot racing with
// in-flight observes (meaningful under -race) and checks the cut is
// internally consistent: quantiles bounded by max, count monotone.
func TestAtomicLatencySnapshotDuringWrites(t *testing.T) {
	var h AtomicLatencyHistogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := NewRNG(uint64(w))
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(time.Duration(g.IntN(1 << 20)))
				}
			}
		}(w)
	}
	var last uint64
	for i := 0; i < 200; i++ {
		snap := h.Snapshot()
		if snap.Count() < last {
			t.Fatalf("count went backwards: %d -> %d", last, snap.Count())
		}
		last = snap.Count()
		if snap.Count() > 0 && snap.Quantile(0.99) > snap.Max()+time.Millisecond {
			t.Fatalf("q99 %v exceeds max %v", snap.Quantile(0.99), snap.Max())
		}
	}
	close(stop)
	wg.Wait()
}

func TestAtomicLatencyNegativeClamped(t *testing.T) {
	var h AtomicLatencyHistogram
	h.Observe(-time.Second)
	snap := h.Snapshot()
	if snap.Count() != 1 || snap.Quantile(1) != 0 {
		t.Fatal("negative duration should clamp to zero")
	}
}
