// Package stats provides the statistical foundation of bdbench: seeded and
// splittable random number generation, the probability distributions used by
// the data generators (uniform, gaussian, zipfian, exponential, pareto,
// poisson, categorical), histogram types for both value and latency data, and
// the divergence measures (KL, JS, chi-square, KS, EMD, ...) that back the
// data-veracity metrics proposed in §5.1 of "On Big Data Benchmarking".
//
// Everything in this package is deterministic given a seed, which is what
// makes bdbench's parallel data generation reproducible: each chunk of a data
// set derives its own RNG from (seed, chunk label) so generation order and
// worker count never change the output.
package stats

import (
	"hash/fnv"
	"math/rand/v2"
)

// RNG is a deterministic pseudo-random number generator. It wraps a PCG
// source from math/rand/v2 and remembers its seed so that child generators
// can be derived reproducibly with Split.
//
// RNG is not safe for concurrent use; derive one per goroutine with Split.
type RNG struct {
	seed uint64
	r    *rand.Rand
}

// goldenGamma is the 64-bit golden-ratio constant used to decorrelate the
// two PCG seed words and to mix child seeds in Split.
const goldenGamma = 0x9E3779B97F4A7C15

// NewRNG returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewPCG(seed, seed^goldenGamma))}
}

// Seed returns the seed this generator was created with.
func (g *RNG) Seed() uint64 { return g.seed }

// Split derives a child generator whose stream depends only on the parent's
// seed and the label, never on how much of the parent stream was consumed.
// This is the primitive behind reproducible parallel data generation:
// chunk i of a data set always uses Split("chunk", i) of the data set seed.
func (g *RNG) Split(label string, index int) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	var buf [8]byte
	v := uint64(index)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	child := g.seed ^ (h.Sum64() * goldenGamma)
	return NewRNG(child)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Int64N returns a uniform value in [0, n). It panics if n <= 0.
func (g *RNG) Int64N(n int64) int64 { return g.r.Int64N(n) }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Rand exposes the underlying math/rand/v2 generator for callers that need
// to interoperate with stdlib helpers (e.g. rand.NewZipf).
func (g *RNG) Rand() *rand.Rand { return g.r }

// Letters are the lowercase characters used by random word/key generators.
const Letters = "abcdefghijklmnopqrstuvwxyz"

// RandomWord returns a random lowercase word with length in [minLen, maxLen].
func (g *RNG) RandomWord(minLen, maxLen int) string {
	if minLen < 1 {
		minLen = 1
	}
	if maxLen < minLen {
		maxLen = minLen
	}
	n := minLen
	if maxLen > minLen {
		n += g.IntN(maxLen - minLen + 1)
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = Letters[g.IntN(len(Letters))]
	}
	return string(b)
}

// FNV64 hashes s with FNV-1a; used wherever bdbench needs a stable,
// seed-independent 64-bit hash of a string (key scattering, partitioning).
func FNV64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Mix64 is a strong 64-bit bit mixer (splitmix64 finalizer). It is used to
// scramble sequential ids into uncorrelated key spaces, as YCSB does for its
// "scrambled zipfian" request distribution.
func Mix64(x uint64) uint64 {
	x += goldenGamma
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
