package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// sampleMean draws n variates and returns their mean.
func sampleMean(d Distribution, n int, seed uint64) float64 {
	g := NewRNG(seed)
	var s Summary
	for i := 0; i < n; i++ {
		s.Observe(d.Sample(g))
	}
	return s.Mean()
}

func TestUniformMean(t *testing.T) {
	d := Uniform{Min: 2, Max: 10}
	m := sampleMean(d, 100000, 1)
	if math.Abs(m-6) > 0.1 {
		t.Fatalf("uniform sample mean %.3f, want ~6", m)
	}
}

func TestGaussianMoments(t *testing.T) {
	d := Gaussian{Mu: 5, Sigma: 2}
	g := NewRNG(2)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Observe(d.Sample(g))
	}
	if math.Abs(s.Mean()-5) > 0.05 {
		t.Fatalf("gaussian mean %.3f, want ~5", s.Mean())
	}
	if math.Abs(s.StdDev()-2) > 0.05 {
		t.Fatalf("gaussian stddev %.3f, want ~2", s.StdDev())
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{Rate: 4}
	m := sampleMean(d, 200000, 3)
	if math.Abs(m-0.25) > 0.01 {
		t.Fatalf("exponential mean %.4f, want ~0.25", m)
	}
}

func TestParetoSamplesAboveScale(t *testing.T) {
	d := Pareto{Xm: 3, Alpha: 2.5}
	g := NewRNG(4)
	for i := 0; i < 10000; i++ {
		if v := d.Sample(g); v < 3 {
			t.Fatalf("pareto sample %v below scale", v)
		}
	}
	m := sampleMean(d, 500000, 5)
	want := d.Mean()
	if math.Abs(m-want)/want > 0.05 {
		t.Fatalf("pareto mean %.3f, want ~%.3f", m, want)
	}
}

func TestParetoMeanUndefined(t *testing.T) {
	if !math.IsNaN((Pareto{Xm: 1, Alpha: 0.9}).Mean()) {
		t.Fatal("pareto mean should be NaN for alpha <= 1")
	}
}

func TestPoissonSmallLambda(t *testing.T) {
	d := Poisson{Lambda: 3}
	m := sampleMean(d, 100000, 6)
	if math.Abs(m-3) > 0.05 {
		t.Fatalf("poisson mean %.3f, want ~3", m)
	}
}

func TestPoissonLargeLambdaApproximation(t *testing.T) {
	d := Poisson{Lambda: 500}
	m := sampleMean(d, 50000, 7)
	if math.Abs(m-500) > 2 {
		t.Fatalf("poisson(500) mean %.2f, want ~500", m)
	}
	g := NewRNG(8)
	for i := 0; i < 1000; i++ {
		if d.Sample(g) < 0 {
			t.Fatal("poisson sample negative")
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	g := NewRNG(9)
	if v := (Poisson{Lambda: 0}).Sample(g); v != 0 {
		t.Fatalf("poisson(0) sample %v, want 0", v)
	}
}

func TestConstant(t *testing.T) {
	g := NewRNG(1)
	c := Constant{Value: 7.5}
	if c.Sample(g) != 7.5 || c.Mean() != 7.5 {
		t.Fatal("constant distribution is not constant")
	}
}

func TestZipfSkew(t *testing.T) {
	z := Zipf{Count: 1000, S: 1.2}
	g := NewRNG(10)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		v := z.Next(g)
		if v < 0 || v >= 1000 {
			t.Fatalf("zipf sample %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate, and counts must be roughly monotone decreasing
	// when aggregated in blocks.
	if counts[0] < counts[10] {
		t.Fatalf("zipf rank 0 (%d) not hotter than rank 10 (%d)", counts[0], counts[10])
	}
	head := 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	if float64(head)/n < 0.3 {
		t.Fatalf("zipf top-10 share %.3f, want heavy head", float64(head)/n)
	}
}

func TestZipfHandlesSAtOrBelowOne(t *testing.T) {
	z := Zipf{Count: 100, S: 1.0}
	g := NewRNG(11)
	for i := 0; i < 1000; i++ {
		if v := z.Next(g); v < 0 || v >= 100 {
			t.Fatalf("zipf(s=1) sample %d out of range", v)
		}
	}
}

func TestScrambledZipfSpreadsHotKeys(t *testing.T) {
	z := ScrambledZipf{Count: 10000, S: 1.3}
	g := NewRNG(12)
	counts := make(map[int64]int)
	for i := 0; i < 100000; i++ {
		v := z.Next(g)
		if v < 0 || v >= 10000 {
			t.Fatalf("scrambled zipf sample %d out of range", v)
		}
		counts[v]++
	}
	// The hottest key should not be key 0 with overwhelming likelihood:
	// scrambling moves rank 0 to Mix64(0) % N.
	want := int64(Mix64(0) % 10000)
	best, bestCount := int64(-1), 0
	for k, c := range counts {
		if c > bestCount {
			best, bestCount = k, c
		}
	}
	if best != want {
		t.Fatalf("hottest scrambled key %d, want %d", best, want)
	}
}

func TestLatestFavorsRecent(t *testing.T) {
	max := int64(1000)
	l := Latest{Max: &max, S: 1.2}
	g := NewRNG(13)
	recent := 0
	const n = 50000
	for i := 0; i < n; i++ {
		v := l.Next(g)
		if v < 0 || v >= max {
			t.Fatalf("latest sample %d out of range", v)
		}
		if v >= max-10 {
			recent++
		}
	}
	if float64(recent)/n < 0.3 {
		t.Fatalf("latest top-10 recent share %.3f, want heavy recency bias", float64(recent)/n)
	}
	// Growing max shifts the hot zone.
	max = 2000
	seenHigh := false
	for i := 0; i < 1000; i++ {
		if l.Next(g) >= 1000 {
			seenHigh = true
			break
		}
	}
	if !seenHigh {
		t.Fatal("latest did not track growing max")
	}
}

func TestLatestEmpty(t *testing.T) {
	max := int64(0)
	l := Latest{Max: &max, S: 1.2}
	if v := l.Next(NewRNG(1)); v != 0 {
		t.Fatalf("latest on empty domain = %d, want 0", v)
	}
}

func TestHotSpotConcentration(t *testing.T) {
	h := HotSpot{Count: 10000, HotSetSize: 100, HotFraction: 0.9}
	g := NewRNG(14)
	hot := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if h.Next(g) < 100 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.88 || frac > 0.93 {
		t.Fatalf("hotspot hot fraction %.3f, want ~0.90 (plus uniform bleed)", frac)
	}
}

func TestSequentialIntWraps(t *testing.T) {
	s := &SequentialInt{Count: 3}
	g := NewRNG(1)
	got := []int64{s.Next(g), s.Next(g), s.Next(g), s.Next(g)}
	want := []int64{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequential step %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestQuickParetoAboveScale(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewRNG(seed)
		p := Pareto{Xm: 2, Alpha: 1.5}
		return p.Sample(g) >= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickZipfInRange(t *testing.T) {
	f := func(seed uint64, cs uint16) bool {
		count := int64(cs%1000) + 2
		g := NewRNG(seed)
		v := Zipf{Count: count, S: 1.1}.Next(g)
		return v >= 0 && v < count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistributionNames(t *testing.T) {
	cases := []struct {
		name string
		d    interface{ Name() string }
	}{
		{"uniform", Uniform{0, 1}},
		{"gaussian", Gaussian{0, 1}},
		{"exp", Exponential{1}},
		{"pareto", Pareto{1, 2}},
		{"poisson", Poisson{1}},
		{"const", Constant{1}},
		{"uniformint", UniformInt{5}},
		{"zipf", Zipf{5, 1.1}},
		{"scrambledzipf", ScrambledZipf{5, 1.1}},
		{"hotspot", HotSpot{5, 1, 0.5}},
		{"sequential", &SequentialInt{Count: 5}},
		{"categorical", NewCategorical("c", []float64{1, 2})},
	}
	for _, c := range cases {
		if c.d.Name() == "" {
			t.Fatalf("%s: empty Name()", c.name)
		}
	}
}
