package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.Count() != 8 {
		t.Fatalf("count %d, want 8", s.Count())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean %g, want 5", s.Mean())
	}
	// Sample variance of that set is 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-9 {
		t.Fatalf("variance %g, want %g", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max %g/%g, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatal("empty summary min/max should be NaN")
	}
	if s.Variance() != 0 || s.Mean() != 0 {
		t.Fatal("empty summary mean/variance should be 0")
	}
}

func TestSummarySingleValue(t *testing.T) {
	var s Summary
	s.Observe(3)
	if s.Variance() != 0 {
		t.Fatalf("single-value variance %g, want 0", s.Variance())
	}
	if s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single-value min/max wrong")
	}
}

func TestSummaryMergeEquivalence(t *testing.T) {
	g := NewRNG(41)
	var whole, left, right Summary
	for i := 0; i < 1000; i++ {
		v := g.NormFloat64()*3 + 10
		whole.Observe(v)
		if i < 400 {
			left.Observe(v)
		} else {
			right.Observe(v)
		}
	}
	left.Merge(&right)
	if left.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", left.Count(), whole.Count())
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("merged mean %g, want %g", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("merged variance %g, want %g", left.Variance(), whole.Variance())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestSummaryMergeWithEmpty(t *testing.T) {
	var a, b Summary
	a.Observe(5)
	a.Merge(&b) // merging empty is a no-op
	if a.Count() != 1 || a.Mean() != 5 {
		t.Fatal("merge with empty changed summary")
	}
	b.Merge(&a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 5 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestQuickSummaryMergeMatchesSequential(t *testing.T) {
	f := func(seed uint64, split uint8) bool {
		g := NewRNG(seed)
		n := 100
		cut := int(split) % n
		var whole, a, b Summary
		for i := 0; i < n; i++ {
			v := g.Float64() * 100
			whole.Observe(v)
			if i < cut {
				a.Observe(v)
			} else {
				b.Observe(v)
			}
		}
		a.Merge(&b)
		return a.Count() == whole.Count() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
