package stats

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Distribution is a real-valued probability distribution that can be sampled
// with an explicit RNG. Table column generators, key choosers and arrival
// processes are all parameterized by Distribution so that a workload's
// statistical shape is data, not code.
type Distribution interface {
	// Sample draws one variate using g.
	Sample(g *RNG) float64
	// Mean returns the theoretical mean (NaN if undefined).
	Mean() float64
	// Name returns a short human-readable identifier such as "zipf(1.1)".
	Name() string
}

// Uniform is the continuous uniform distribution on [Min, Max).
type Uniform struct {
	Min, Max float64
}

// Sample implements Distribution.
func (u Uniform) Sample(g *RNG) float64 { return u.Min + g.Float64()*(u.Max-u.Min) }

// Mean implements Distribution.
func (u Uniform) Mean() float64 { return (u.Min + u.Max) / 2 }

// Name implements Distribution.
func (u Uniform) Name() string { return fmt.Sprintf("uniform[%g,%g)", u.Min, u.Max) }

// Gaussian is the normal distribution N(Mu, Sigma^2).
type Gaussian struct {
	Mu, Sigma float64
}

// Sample implements Distribution.
func (n Gaussian) Sample(g *RNG) float64 { return n.Mu + n.Sigma*g.NormFloat64() }

// Mean implements Distribution.
func (n Gaussian) Mean() float64 { return n.Mu }

// Name implements Distribution.
func (n Gaussian) Name() string { return fmt.Sprintf("gaussian(%g,%g)", n.Mu, n.Sigma) }

// Exponential is the exponential distribution with the given Rate (lambda).
type Exponential struct {
	Rate float64
}

// Sample implements Distribution.
func (e Exponential) Sample(g *RNG) float64 { return g.ExpFloat64() / e.Rate }

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Name implements Distribution.
func (e Exponential) Name() string { return fmt.Sprintf("exp(%g)", e.Rate) }

// Pareto is the Pareto (power-law) distribution with scale Xm and shape Alpha.
type Pareto struct {
	Xm, Alpha float64
}

// Sample implements Distribution.
func (p Pareto) Sample(g *RNG) float64 {
	u := g.Float64()
	for u == 0 {
		u = g.Float64()
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean implements Distribution.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.NaN()
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Name implements Distribution.
func (p Pareto) Name() string { return fmt.Sprintf("pareto(%g,%g)", p.Xm, p.Alpha) }

// Poisson is the Poisson distribution with mean Lambda. Sampling uses
// Knuth's product method for small lambda and a normal approximation with
// continuity correction for large lambda.
type Poisson struct {
	Lambda float64
}

// Sample implements Distribution.
func (p Poisson) Sample(g *RNG) float64 {
	if p.Lambda <= 0 {
		return 0
	}
	if p.Lambda > 64 {
		v := math.Round(p.Lambda + math.Sqrt(p.Lambda)*g.NormFloat64())
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-p.Lambda)
	k := 0
	prod := 1.0
	for {
		prod *= g.Float64()
		if prod <= l {
			return float64(k)
		}
		k++
	}
}

// Mean implements Distribution.
func (p Poisson) Mean() float64 { return p.Lambda }

// Name implements Distribution.
func (p Poisson) Name() string { return fmt.Sprintf("poisson(%g)", p.Lambda) }

// Constant always returns Value; useful as a degenerate arrival process or
// column generator.
type Constant struct {
	Value float64
}

// Sample implements Distribution.
func (c Constant) Sample(*RNG) float64 { return c.Value }

// Mean implements Distribution.
func (c Constant) Mean() float64 { return c.Value }

// Name implements Distribution.
func (c Constant) Name() string { return fmt.Sprintf("const(%g)", c.Value) }

// IntSampler draws integer variates in [0, N). It is the interface used by
// key choosers (which item does the next OLTP request touch?) and categorical
// column generators.
type IntSampler interface {
	// Next draws the next integer in [0, N).
	Next(g *RNG) int64
	// N returns the size of the domain.
	N() int64
	// Name returns a short identifier.
	Name() string
}

// UniformInt samples uniformly from [0, Count).
type UniformInt struct {
	Count int64
}

// Next implements IntSampler.
func (u UniformInt) Next(g *RNG) int64 { return g.Int64N(u.Count) }

// N implements IntSampler.
func (u UniformInt) N() int64 { return u.Count }

// Name implements IntSampler.
func (u UniformInt) Name() string { return fmt.Sprintf("uniformint(%d)", u.Count) }

// Zipf samples ranks from a zipfian distribution over [0, Count): rank r is
// drawn with probability proportional to 1/(r+1)^S. It is the canonical
// model for skewed access patterns (popular keys, popular words). The
// implementation uses the rejection-inversion sampler from math/rand/v2,
// reconstructed lazily per RNG because the stdlib sampler binds to a source.
type Zipf struct {
	Count int64
	S     float64 // exponent, must be > 1 for the stdlib sampler
}

// Next implements IntSampler.
func (z Zipf) Next(g *RNG) int64 {
	s := z.S
	if s <= 1 {
		s = 1.0001
	}
	// rand/v2's Zipf generates values in [0, imax] with P(k) ∝ (v+k)^-s.
	zs := newZipfState(g, s, 1, uint64(z.Count-1))
	return int64(zs.Uint64())
}

// N implements IntSampler.
func (z Zipf) N() int64 { return z.Count }

// Name implements IntSampler.
func (z Zipf) Name() string { return fmt.Sprintf("zipf(%d,s=%g)", z.Count, z.S) }

// ScrambledZipf is YCSB's "scrambled zipfian": zipf-distributed popularity
// ranks scattered across the item space with a bit mixer, so hot items are
// spread uniformly over the key range instead of clustered at low ids.
type ScrambledZipf struct {
	Count int64
	S     float64
}

// Next implements IntSampler.
func (z ScrambledZipf) Next(g *RNG) int64 {
	rank := Zipf{Count: z.Count, S: z.S}.Next(g)
	return int64(Mix64(uint64(rank)) % uint64(z.Count))
}

// N implements IntSampler.
func (z ScrambledZipf) N() int64 { return z.Count }

// Name implements IntSampler.
func (z ScrambledZipf) Name() string { return fmt.Sprintf("scrambledzipf(%d,s=%g)", z.Count, z.S) }

// Latest is YCSB's "latest" distribution: recently inserted items are most
// popular. Max is a pointer so the hot end tracks ongoing inserts; it is
// read atomically, so concurrent writers must update it with sync/atomic.
type Latest struct {
	Max *int64 // current highest id (exclusive)
	S   float64
}

// Next implements IntSampler.
func (l Latest) Next(g *RNG) int64 {
	n := atomic.LoadInt64(l.Max)
	if n <= 0 {
		return 0
	}
	off := Zipf{Count: n, S: l.S}.Next(g)
	return n - 1 - off
}

// N implements IntSampler.
func (l Latest) N() int64 { return atomic.LoadInt64(l.Max) }

// Name implements IntSampler.
func (l Latest) Name() string { return "latest" }

// HotSpot concentrates HotFraction of the accesses on the first HotSetSize
// items, uniformly otherwise — YCSB's hotspot distribution.
type HotSpot struct {
	Count       int64
	HotSetSize  int64
	HotFraction float64
}

// Next implements IntSampler.
func (h HotSpot) Next(g *RNG) int64 {
	if g.Bool(h.HotFraction) && h.HotSetSize > 0 {
		return g.Int64N(h.HotSetSize)
	}
	return g.Int64N(h.Count)
}

// N implements IntSampler.
func (h HotSpot) N() int64 { return h.Count }

// Name implements IntSampler.
func (h HotSpot) Name() string { return fmt.Sprintf("hotspot(%d)", h.Count) }

// SequentialInt returns 0, 1, 2, ... wrapping at Count; used by loaders.
type SequentialInt struct {
	Count int64
	next  int64
}

// Next implements IntSampler.
func (s *SequentialInt) Next(*RNG) int64 {
	v := s.next % s.Count
	s.next++
	return v
}

// N implements IntSampler.
func (s *SequentialInt) N() int64 { return s.Count }

// Name implements IntSampler.
func (s *SequentialInt) Name() string { return "sequential" }

// zipfState implements the rejection-inversion zipf sampler (Hörmann &
// Derflinger), mirroring math/rand's Zipf but driven by our RNG so that
// samples stay reproducible under Split.
type zipfState struct {
	g                       *RNG
	imax                    float64
	v, q                    float64
	oneminusQ, oneminusQinv float64
	hxm, hx0minusHxm, s     float64
}

func newZipfState(g *RNG, q, v float64, imax uint64) *zipfState {
	z := &zipfState{g: g, imax: float64(imax), v: v, q: q}
	z.oneminusQ = 1 - q
	z.oneminusQinv = 1 / z.oneminusQ
	z.hxm = z.h(z.imax + 0.5)
	z.hx0minusHxm = z.h(0.5) - math.Exp(math.Log(v)*(-q)) - z.hxm
	z.s = 2 - z.hinv(z.h(1.5)-math.Exp(-q*math.Log(v+1)))
	return z
}

func (z *zipfState) h(x float64) float64 {
	return math.Exp(z.oneminusQ*math.Log(z.v+x)) * z.oneminusQinv
}

func (z *zipfState) hinv(x float64) float64 {
	return math.Exp(z.oneminusQinv*math.Log(z.oneminusQ*x)) - z.v
}

// Uint64 draws one zipf variate in [0, imax].
func (z *zipfState) Uint64() uint64 {
	for {
		r := z.g.Float64()
		ur := z.hxm + r*z.hx0minusHxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.s {
			return uint64(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-math.Log(k+z.v)*z.q) {
			return uint64(k)
		}
	}
}
