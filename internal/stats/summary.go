package stats

import "math"

// Summary accumulates streaming first- and second-moment statistics using
// Welford's numerically stable algorithm, plus min and max. It is used
// wherever bdbench needs cheap running statistics: column profiles,
// generation-rate probes, per-step pipeline timings.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Observe records one value.
func (s *Summary) Observe(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// Count returns the number of observed values.
func (s *Summary) Count() uint64 { return s.n }

// Mean returns the running mean (0 if empty).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the sample variance (0 if fewer than two values).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observed value (NaN if empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observed value (NaN if empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Merge folds other into s as if all of other's values had been observed
// by s (Chan et al. parallel variance combination).
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	delta := other.mean - s.mean
	mean := s.mean + delta*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + delta*delta*float64(s.n)*float64(other.n)/float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}
