package stats

import "fmt"

// Alias is a Walker alias-method sampler over a finite categorical
// distribution. Construction is O(n); each sample is O(1). bdbench uses it
// for word sampling from LDA topic-word distributions and for categorical
// table columns, where n can reach hundreds of thousands of categories.
type Alias struct {
	prob  []float64
	alias []int32
	n     int
}

// NewAlias builds a sampler for the given non-negative weights. Weights need
// not be normalized. It panics if weights is empty or sums to zero, which
// always indicates a programming error in a generator model.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("stats: NewAlias with no weights")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("stats: NewAlias weight %d is negative", i))
		}
		total += w
	}
	if total == 0 {
		panic("stats: NewAlias weights sum to zero")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n), n: n}
	// Scaled probabilities; mean 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical residue; treat as certain
	}
	return a
}

// N returns the number of categories.
func (a *Alias) N() int { return a.n }

// Sample draws a category index in [0, N).
func (a *Alias) Sample(g *RNG) int {
	i := g.IntN(a.n)
	if g.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Categorical is an IntSampler over explicit weights, backed by an Alias
// table. It adapts Alias to the IntSampler interface used by key choosers.
type Categorical struct {
	alias *Alias
	label string
}

// NewCategorical builds an IntSampler that draws index i with probability
// proportional to weights[i].
func NewCategorical(label string, weights []float64) *Categorical {
	return &Categorical{alias: NewAlias(weights), label: label}
}

// Next implements IntSampler.
func (c *Categorical) Next(g *RNG) int64 { return int64(c.alias.Sample(g)) }

// N implements IntSampler.
func (c *Categorical) N() int64 { return int64(c.alias.N()) }

// Name implements IntSampler.
func (c *Categorical) Name() string { return fmt.Sprintf("categorical(%s,%d)", c.label, c.alias.N()) }
