package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGammaMeanVariance(t *testing.T) {
	g := NewRNG(51)
	for _, shape := range []float64{0.5, 1, 2.5, 9} {
		var s Summary
		for i := 0; i < 200000; i++ {
			s.Observe(GammaSample(g, shape))
		}
		// Gamma(shape, 1) has mean shape and variance shape.
		if math.Abs(s.Mean()-shape)/shape > 0.03 {
			t.Fatalf("gamma(%g) mean %.4f, want ~%g", shape, s.Mean(), shape)
		}
		if math.Abs(s.Variance()-shape)/shape > 0.08 {
			t.Fatalf("gamma(%g) variance %.4f, want ~%g", shape, s.Variance(), shape)
		}
	}
}

func TestGammaNonPositiveShape(t *testing.T) {
	g := NewRNG(1)
	if GammaSample(g, 0) != 0 || GammaSample(g, -1) != 0 {
		t.Fatal("non-positive shape should return 0")
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	g := NewRNG(52)
	v := DirichletSample(g, []float64{1, 2, 3, 4})
	sum := 0.0
	for _, x := range v {
		if x < 0 {
			t.Fatalf("negative component %v", v)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("dirichlet sum %.12f, want 1", sum)
	}
}

func TestDirichletMeanMatchesAlpha(t *testing.T) {
	g := NewRNG(53)
	alpha := []float64{2, 6}
	var s0, s1 Summary
	for i := 0; i < 50000; i++ {
		v := DirichletSample(g, alpha)
		s0.Observe(v[0])
		s1.Observe(v[1])
	}
	if math.Abs(s0.Mean()-0.25) > 0.01 {
		t.Fatalf("dirichlet mean[0] %.4f, want 0.25", s0.Mean())
	}
	if math.Abs(s1.Mean()-0.75) > 0.01 {
		t.Fatalf("dirichlet mean[1] %.4f, want 0.75", s1.Mean())
	}
}

func TestSymmetricDirichletConcentration(t *testing.T) {
	g := NewRNG(54)
	// Very small alpha concentrates mass on a single component.
	sparseMax := 0.0
	denseMax := 1.0
	for i := 0; i < 100; i++ {
		sp := SymmetricDirichletSample(g, 0.01, 10)
		dn := SymmetricDirichletSample(g, 100, 10)
		for _, v := range sp {
			if v > sparseMax {
				sparseMax = v
			}
		}
		for _, v := range dn {
			if v > denseMax && v < 1 {
				denseMax = v
			}
		}
		_ = dn
	}
	if sparseMax < 0.9 {
		t.Fatalf("sparse dirichlet max %.3f, want near 1", sparseMax)
	}
}

func TestQuickDirichletValid(t *testing.T) {
	f := func(seed uint64, k uint8) bool {
		g := NewRNG(seed)
		n := int(k%8) + 2
		v := SymmetricDirichletSample(g, 0.5, n)
		sum := 0.0
		for _, x := range v {
			if x < 0 || math.IsNaN(x) {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
