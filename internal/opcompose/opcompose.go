// Package opcompose compiles operation patterns into runnable workloads —
// the BigOP argument (arXiv:1401.6628) that a benchmark should *compose*
// workloads from abstract operation patterns over datasets instead of
// enumerating them. A Pattern declares a weighted mix of primitive
// operations (filter, aggregate, join, scan, transform, put, get) over a
// named registered corpus, optionally split into phases with their own
// mixes, fractions and pacing rates; Compile turns it into a synthetic
// workloads.Workload that generates its corpus through the chunked datagen
// pipeline, executes the operation stream chunk-parallel with
// (seed, chunk)-derived RNGs, and records per-phase latencies through
// pre-resolved OpRefs — so a composed workload shards, distributes and
// reproduces exactly like a built-in one.
package opcompose

import (
	"fmt"
	"math"
	"strings"

	"github.com/bdbench/bdbench/internal/workloads"
)

// Defaults applied by Pattern.Normalized.
const (
	// DefaultCorpus is the corpus a pattern runs over when it names none;
	// the weblog corpus doubles as the default trace source for replay
	// arrivals, so the two halves of a composed scenario share one dataset.
	DefaultCorpus = "weblog"
	// DefaultOpsPerScale is the operation count per scale unit.
	DefaultOpsPerScale = 1000
)

// OpWeight is one operation of a mix with its relative weight. A zero
// weight normalizes to 1, so a plain list of ops is a uniform mix.
type OpWeight struct {
	// Op names a primitive operation (workloads.PrimitiveOps) or an
	// operation registered through Register.
	Op string `json:"op"`
	// Weight is the operation's relative draw weight (default 1).
	Weight float64 `json:"weight,omitempty"`
}

// Phase is one stage of a pattern: a contiguous fraction of the operation
// stream with its own mix and optional pacing.
type Phase struct {
	// Name labels the phase in reports; operations record as "name/op".
	// Empty defaults to "phase<i>".
	Name string `json:"name,omitempty"`
	// Ops is the phase's operation mix; empty inherits the pattern-level
	// mix.
	Ops []OpWeight `json:"ops,omitempty"`
	// Fraction is the share of the operation stream this phase covers, in
	// (0, 1]. Zero-fraction phases split the remainder equally.
	Fraction float64 `json:"fraction,omitempty"`
	// Rate, when positive, paces this phase's operations through a shared
	// token bucket at this many operations/second. Zero runs unpaced.
	Rate float64 `json:"rate,omitempty"`
}

// Pattern declares a composed workload: a mix (or phased sequence of
// mixes) of primitive operations over a registered corpus. The zero value
// of every field defaults through Normalized, mirroring scenario.Spec.
type Pattern struct {
	// Name is the compiled workload's name; the scenario layer derives
	// "composed-<entry>" when empty.
	Name string `json:"name,omitempty"`
	// Corpus names the registered corpus generator supplying the records
	// the operations run over (default "weblog").
	Corpus string `json:"corpus,omitempty"`
	// Ops is the pattern-level operation mix, inherited by phases that
	// declare none.
	Ops []OpWeight `json:"ops,omitempty"`
	// OpsPerScale is the operation count per scale unit (default 1000): a
	// pattern at scale S executes OpsPerScale×S operations.
	OpsPerScale int `json:"opsPerScale,omitempty"`
	// Phases split the operation stream into stages; empty means one phase
	// ("main") running the pattern-level mix over the whole stream.
	Phases []Phase `json:"phases,omitempty"`
	// Category classifies the compiled workload in reports (default
	// "online services").
	Category string `json:"category,omitempty"`
}

// describe renders the pattern for error messages.
func (p Pattern) describe() string {
	ops := make([]string, 0, len(p.Ops))
	for _, ow := range p.Ops {
		ops = append(ops, ow.Op)
	}
	return fmt.Sprintf("pattern %q (corpus=%s ops=[%s] phases=%d)",
		p.Name, p.Corpus, strings.Join(ops, " "), len(p.Phases))
}

// Normalized returns the pattern with every defaultable zero field filled:
// corpus, ops-per-scale, the implicit single phase, phase names, inherited
// phase mixes, unit weights, and phase fractions (explicit fractions keep
// their values; zero-fraction phases split the remainder equally). Like
// scenario.Spec.Normalized it is the single place defaults are applied —
// Compile runs exactly these values and Validate reports them.
func (p Pattern) Normalized() Pattern {
	if p.Corpus == "" {
		p.Corpus = DefaultCorpus
	}
	if p.OpsPerScale == 0 {
		p.OpsPerScale = DefaultOpsPerScale
	}
	if p.Category == "" {
		p.Category = string(workloads.Online)
	}
	phases := make([]Phase, 0, len(p.Phases))
	if len(p.Phases) == 0 {
		phases = append(phases, Phase{Name: "main"})
	} else {
		phases = append(phases, p.Phases...)
	}
	explicit := 0.0
	implicit := 0
	for i := range phases {
		if phases[i].Name == "" {
			phases[i].Name = fmt.Sprintf("phase%d", i)
		}
		if len(phases[i].Ops) == 0 {
			phases[i].Ops = append([]OpWeight(nil), p.Ops...)
		} else {
			phases[i].Ops = append([]OpWeight(nil), phases[i].Ops...)
		}
		for j := range phases[i].Ops {
			if phases[i].Ops[j].Weight == 0 {
				phases[i].Ops[j].Weight = 1
			}
		}
		if phases[i].Fraction > 0 {
			explicit += phases[i].Fraction
		} else {
			implicit++
		}
	}
	if implicit > 0 && explicit < 1 {
		share := (1 - explicit) / float64(implicit)
		for i := range phases {
			if phases[i].Fraction == 0 {
				phases[i].Fraction = share
			}
		}
	}
	p.Phases = phases
	return p
}

// fractionTolerance absorbs float representation error when checking that
// phase fractions cover the stream.
const fractionTolerance = 1e-9

// Validate checks the normalized pattern's shape without touching the
// operation or corpus registries (Compile does both): positive sizes,
// non-negative weights and rates, at least one operation per phase, and
// phase fractions that cover the stream exactly.
func (p Pattern) Validate() error {
	n := p.Normalized()
	if n.OpsPerScale < 0 {
		return fmt.Errorf("opcompose: %s: negative opsPerScale %d", n.describe(), p.OpsPerScale)
	}
	total := 0.0
	for i, ph := range n.Phases {
		if len(ph.Ops) == 0 {
			return fmt.Errorf("opcompose: %s: phase %q has no operations and the pattern declares no mix to inherit",
				n.describe(), ph.Name)
		}
		weight := 0.0
		for _, ow := range ph.Ops {
			if ow.Op == "" {
				return fmt.Errorf("opcompose: %s: phase %q has an operation with no name", n.describe(), ph.Name)
			}
			if ow.Weight < 0 {
				return fmt.Errorf("opcompose: %s: phase %q: negative weight %g for op %q",
					n.describe(), ph.Name, ow.Weight, ow.Op)
			}
			weight += ow.Weight
		}
		if weight == 0 {
			return fmt.Errorf("opcompose: %s: phase %q: all weights are zero", n.describe(), ph.Name)
		}
		if ph.Rate < 0 {
			return fmt.Errorf("opcompose: %s: phase %q: negative rate %g", n.describe(), ph.Name, ph.Rate)
		}
		if ph.Fraction < 0 {
			return fmt.Errorf("opcompose: %s: phase %d (%q): negative fraction %g", n.describe(), i, ph.Name, ph.Fraction)
		}
		if ph.Fraction == 0 {
			return fmt.Errorf("opcompose: %s: phase %d (%q) gets no share of the stream (the explicit fractions already cover it)",
				n.describe(), i, ph.Name)
		}
		total += ph.Fraction
	}
	if math.Abs(total-1) > fractionTolerance {
		return fmt.Errorf("opcompose: %s: phase fractions sum to %g, want 1 (zero fractions split the remainder equally)",
			n.describe(), total)
	}
	switch workloads.Category(n.Category) {
	case workloads.Online, workloads.Offline, workloads.Realtime:
	default:
		return fmt.Errorf("opcompose: %s: unknown category %q (valid: %q, %q, %q)",
			n.describe(), n.Category, workloads.Online, workloads.Offline, workloads.Realtime)
	}
	return nil
}
