package opcompose

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/bdbench/bdbench/internal/stats"
	"github.com/bdbench/bdbench/internal/workloads"
)

// opWindow is the record-window size of the windowed primitives (scan,
// filter, aggregate, join, transform): each execution touches this many
// corpus records starting at a seeded position.
const opWindow = 64

// keySpace bounds the key-value substrate keys the put/get primitives draw
// from; small enough that a mixed put/get stream sees real hits.
const keySpace = 1 << 14

// OpContext is the execution context one operation runs in. Everything in
// it is deterministic per chunk: the RNG derives from (seed, chunk index),
// Records is the generated corpus split into lines, and Store is a
// chunk-local key-value substrate shared by the chunk's put/get stream —
// chunk-local so chunks stay independent and worker count cannot change a
// single output value.
type OpContext struct {
	// RNG is the chunk's seeded generator; operations draw positions, keys
	// and probes from it.
	RNG *stats.RNG
	// Records is the corpus, one record per line.
	Records []string
	// Store is the chunk-local key-value substrate for put/get.
	Store map[uint64]string
}

// Operation is one registered primitive: Apply executes it once against
// the context and returns a fingerprint — a value derived only from the
// context's deterministic state, folded into the composed workload's
// pattern digest so cross-worker and cross-machine runs can prove they
// computed the same thing.
type Operation struct {
	Name  string
	Apply func(*OpContext) uint64
}

var (
	opsMu    sync.RWMutex
	opsExtra = map[string]Operation{}
)

// builtins maps the primitive vocabulary (workloads.PrimitiveOps) to its
// reference implementations.
var builtins = map[string]Operation{
	string(workloads.OpScan):      {Name: string(workloads.OpScan), Apply: opScan},
	string(workloads.OpFilter):    {Name: string(workloads.OpFilter), Apply: opFilter},
	string(workloads.OpAggregate): {Name: string(workloads.OpAggregate), Apply: opAggregate},
	string(workloads.OpJoin):      {Name: string(workloads.OpJoin), Apply: opJoin},
	string(workloads.OpTransform): {Name: string(workloads.OpTransform), Apply: opTransform},
	string(workloads.OpPut):       {Name: string(workloads.OpPut), Apply: opPut},
	string(workloads.OpGet):       {Name: string(workloads.OpGet), Apply: opGet},
}

// Register adds an operation to the pattern vocabulary under op.Name,
// replacing any previous registration of that name (mirroring
// datagen.Register). The builtin primitives cannot be replaced — patterns
// relying on them must mean the same thing everywhere.
func Register(op Operation) error {
	if op.Name == "" {
		return fmt.Errorf("opcompose: Register: operation has no name")
	}
	if op.Apply == nil {
		return fmt.Errorf("opcompose: Register: operation %q has no Apply", op.Name)
	}
	if _, ok := builtins[op.Name]; ok {
		return fmt.Errorf("opcompose: Register: %q is a builtin primitive and cannot be replaced", op.Name)
	}
	opsMu.Lock()
	defer opsMu.Unlock()
	opsExtra[op.Name] = op
	return nil
}

// Lookup resolves an operation by name: builtins first, then registered
// extensions.
func Lookup(name string) (Operation, bool) {
	if op, ok := builtins[name]; ok {
		return op, true
	}
	opsMu.RLock()
	defer opsMu.RUnlock()
	op, ok := opsExtra[name]
	return op, ok
}

// Operations returns every available operation name: the primitive
// vocabulary in canonical order, then registered extensions sorted.
func Operations() []string {
	prim := workloads.PrimitiveOps()
	out := make([]string, 0, len(prim))
	for _, op := range prim {
		out = append(out, string(op))
	}
	opsMu.RLock()
	extra := make([]string, 0, len(opsExtra))
	for name := range opsExtra {
		extra = append(extra, name)
	}
	opsMu.RUnlock()
	sort.Strings(extra)
	return append(out, extra...)
}

// window picks a seeded window start over the records; n is the effective
// window size (the whole corpus when it is smaller than opWindow).
func window(ctx *OpContext) (start, n int) {
	if len(ctx.Records) == 0 {
		return 0, 0
	}
	n = opWindow
	if len(ctx.Records) < n {
		n = len(ctx.Records)
	}
	return ctx.RNG.IntN(len(ctx.Records)), n
}

// rec wraps an index into the records ring.
func rec(ctx *OpContext, i int) string { return ctx.Records[i%len(ctx.Records)] }

// opScan reads a window sequentially and folds the record sizes.
func opScan(ctx *OpContext) uint64 {
	start, n := window(ctx)
	var fold uint64
	for i := 0; i < n; i++ {
		fold = fold*31 + uint64(len(rec(ctx, start+i)))
	}
	return stats.Mix64(fold)
}

// opFilter draws a 3-byte probe from a seeded record and counts the window
// records containing it.
func opFilter(ctx *OpContext) uint64 {
	start, n := window(ctx)
	if n == 0 {
		return 0
	}
	src := rec(ctx, ctx.RNG.IntN(len(ctx.Records)))
	probe := src
	if len(src) > 3 {
		at := ctx.RNG.IntN(len(src) - 3)
		probe = src[at : at+3]
	}
	var hits uint64
	for i := 0; i < n; i++ {
		if strings.Contains(rec(ctx, start+i), probe) {
			hits++
		}
	}
	return stats.Mix64(hits<<16 | uint64(n))
}

// opAggregate groups a window by record-length class and folds per-group
// byte sums.
func opAggregate(ctx *OpContext) uint64 {
	start, n := window(ctx)
	var groups [8]uint64
	for i := 0; i < n; i++ {
		l := uint64(len(rec(ctx, start+i)))
		groups[l%8] += l
	}
	var fold uint64
	for _, g := range groups {
		fold = fold*31 + g
	}
	return stats.Mix64(fold)
}

// joinKey is a record's join key: its first field (the combined-log host,
// a table row's first column), or the whole record when it has one field.
func joinKey(s string) string {
	if i := strings.IndexByte(s, ' '); i > 0 {
		return s[:i]
	}
	return s
}

// opJoin builds a key set over one window and probes it with a second,
// counting matches.
func opJoin(ctx *OpContext) uint64 {
	start, n := window(ctx)
	if n == 0 {
		return 0
	}
	keys := make(map[string]struct{}, n)
	for i := 0; i < n; i++ {
		keys[joinKey(rec(ctx, start+i))] = struct{}{}
	}
	probeStart := ctx.RNG.IntN(len(ctx.Records))
	var hits uint64
	for i := 0; i < n; i++ {
		if _, ok := keys[joinKey(rec(ctx, probeStart+i))]; ok {
			hits++
		}
	}
	return stats.Mix64(hits<<16 | uint64(len(keys)))
}

// opTransform maps every window record through FNV-1a and xor-folds the
// results.
func opTransform(ctx *OpContext) uint64 {
	start, n := window(ctx)
	var fold uint64
	for i := 0; i < n; i++ {
		fold ^= stats.FNV64(rec(ctx, start+i))
	}
	return stats.Mix64(fold)
}

// opPut writes a seeded record under a seeded key.
func opPut(ctx *OpContext) uint64 {
	if len(ctx.Records) == 0 {
		return 0
	}
	key := ctx.RNG.Uint64() % keySpace
	v := rec(ctx, ctx.RNG.IntN(len(ctx.Records)))
	ctx.Store[key] = v
	return stats.Mix64(key<<1 | 1)
}

// opGet reads a seeded key from the substrate; hits fold the value size.
func opGet(ctx *OpContext) uint64 {
	key := ctx.RNG.Uint64() % keySpace
	v, ok := ctx.Store[key]
	if !ok {
		return stats.Mix64(key << 1)
	}
	return stats.Mix64(key<<16 | uint64(len(v)))
}
