package opcompose

import (
	"context"
	"strings"
	"testing"
	"time"

	_ "github.com/bdbench/bdbench/internal/datagen/corpora" // register builtin corpora
	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/stats"
	"github.com/bdbench/bdbench/internal/workloads"
)

// testPattern mixes three primitives over the weblog corpus in two phases.
func testPattern() Pattern {
	return Pattern{
		Name:        "test-mix",
		Corpus:      "weblog",
		OpsPerScale: 600,
		Ops:         []OpWeight{{Op: "filter"}, {Op: "aggregate", Weight: 2}, {Op: "scan"}},
		Phases: []Phase{
			{Name: "load", Ops: []OpWeight{{Op: "put"}, {Op: "get"}}, Fraction: 0.4},
			{Name: "serve"}, // inherits the pattern mix and the remaining 0.6
		},
	}
}

// TestOperationsVocabulary: the primitive vocabulary is listed first in
// canonical order, and every listed operation resolves.
func TestOperationsVocabulary(t *testing.T) {
	names := Operations()
	prim := workloads.PrimitiveOps()
	if len(names) < len(prim) {
		t.Fatalf("Operations() = %v, shorter than the primitive vocabulary", names)
	}
	for i, op := range prim {
		if names[i] != string(op) {
			t.Fatalf("Operations()[%d] = %q, want %q", i, names[i], op)
		}
	}
	for _, name := range names {
		if _, ok := Lookup(name); !ok {
			t.Fatalf("listed operation %q does not resolve", name)
		}
	}
}

// TestRegisterOperation: extensions register and become usable in
// patterns; invalid and builtin-shadowing registrations are rejected.
func TestRegisterOperation(t *testing.T) {
	if err := Register(Operation{Name: "", Apply: func(*OpContext) uint64 { return 0 }}); err == nil {
		t.Fatal("registered an operation with no name")
	}
	if err := Register(Operation{Name: "noop"}); err == nil {
		t.Fatal("registered an operation with no Apply")
	}
	if err := Register(Operation{Name: "scan", Apply: func(*OpContext) uint64 { return 0 }}); err == nil {
		t.Fatal("replaced the builtin scan primitive")
	}
	if err := Register(Operation{Name: "test-custom", Apply: func(ctx *OpContext) uint64 {
		return uint64(len(ctx.Records))
	}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := Lookup("test-custom"); !ok {
		t.Fatal("registered operation does not resolve")
	}
	found := false
	for _, name := range Operations() {
		if name == "test-custom" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Operations() = %v does not list test-custom", Operations())
	}
	p := Pattern{Name: "custom", Ops: []OpWeight{{Op: "test-custom"}}, OpsPerScale: 64}
	if _, err := Compile(p); err != nil {
		t.Fatalf("pattern over a registered operation failed to compile: %v", err)
	}
}

// TestPatternNormalized pins the defaulting rules: corpus, ops-per-scale,
// phase names, inherited mixes, unit weights and remainder fractions.
func TestPatternNormalized(t *testing.T) {
	n := testPattern().Normalized()
	if n.Corpus != "weblog" || n.OpsPerScale != 600 {
		t.Fatalf("normalized corpus/opsPerScale = %q/%d", n.Corpus, n.OpsPerScale)
	}
	if len(n.Phases) != 2 {
		t.Fatalf("normalized phases = %d, want 2", len(n.Phases))
	}
	if n.Phases[1].Name != "serve" {
		t.Fatalf("phase 1 name = %q", n.Phases[1].Name)
	}
	if got := n.Phases[1].Fraction; got < 0.6-1e-12 || got > 0.6+1e-12 {
		t.Fatalf("phase 1 fraction = %g, want the 0.6 remainder", got)
	}
	if len(n.Phases[1].Ops) != 3 {
		t.Fatalf("phase 1 inherited %d ops, want 3", len(n.Phases[1].Ops))
	}
	if n.Phases[1].Ops[0].Weight != 1 || n.Phases[1].Ops[1].Weight != 2 {
		t.Fatalf("inherited weights = %+v", n.Phases[1].Ops)
	}
	minimal := Pattern{Ops: []OpWeight{{Op: "scan"}}}.Normalized()
	if minimal.Corpus != DefaultCorpus || minimal.OpsPerScale != DefaultOpsPerScale {
		t.Fatalf("minimal pattern defaults = %q/%d", minimal.Corpus, minimal.OpsPerScale)
	}
	if len(minimal.Phases) != 1 || minimal.Phases[0].Name != "main" || minimal.Phases[0].Fraction != 1 {
		t.Fatalf("minimal pattern phases = %+v", minimal.Phases)
	}
}

// TestPatternValidateErrors covers the rejection paths, including the ones
// only Compile can check (registries).
func TestPatternValidateErrors(t *testing.T) {
	bad := []struct {
		name string
		p    Pattern
		want string
	}{
		{"no ops", Pattern{Name: "x"}, "no operations"},
		{"negative weight", Pattern{Name: "x", Ops: []OpWeight{{Op: "scan", Weight: -1}}}, "negative weight"},
		{"negative rate", Pattern{Name: "x", Ops: []OpWeight{{Op: "scan"}}, Phases: []Phase{{Rate: -5}}}, "negative rate"},
		{"fractions over 1", Pattern{Name: "x", Ops: []OpWeight{{Op: "scan"}},
			Phases: []Phase{{Fraction: 0.7}, {Fraction: 0.7}}}, "fractions sum"},
		{"no share left", Pattern{Name: "x", Ops: []OpWeight{{Op: "scan"}},
			Phases: []Phase{{Fraction: 1}, {}}}, "no share"},
		{"bad category", Pattern{Name: "x", Ops: []OpWeight{{Op: "scan"}}, Category: "interactive"}, "unknown category"},
	}
	for _, tc := range bad {
		err := tc.p.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted %+v", tc.name, tc.p)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, err := Compile(Pattern{Name: "x", Ops: []OpWeight{{Op: "mystery"}}}); err == nil || !strings.Contains(err.Error(), "unknown operation") {
		t.Fatalf("Compile accepted an unknown operation: %v", err)
	}
	if _, err := Compile(Pattern{Name: "x", Corpus: "nope", Ops: []OpWeight{{Op: "scan"}}}); err == nil || !strings.Contains(err.Error(), "unknown corpus") {
		t.Fatalf("Compile accepted an unknown corpus: %v", err)
	}
	if _, err := Compile(Pattern{Ops: []OpWeight{{Op: "scan"}}}); err == nil || !strings.Contains(err.Error(), "no name") {
		t.Fatalf("Compile accepted a nameless pattern: %v", err)
	}
}

// runComposed executes the compiled test pattern once and returns the
// snapshot. The latency clock is frozen so results depend only on the
// seed.
func runComposed(t *testing.T, params workloads.Params) metrics.Result {
	t.Helper()
	w, err := Compile(testPattern())
	if err != nil {
		t.Fatal(err)
	}
	w.(interface{ SetClock(func() time.Time) }).SetClock(func() time.Time { return time.Unix(1754600000, 0) })
	c := metrics.NewCollector(w.Name())
	c.Start()
	if err := w.Run(context.Background(), params, c); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	return c.Snapshot()
}

// TestComposedDeterministicAcrossWorkers is the package's core guarantee:
// the pattern digest, operation counts and per-phase label set of a
// composed run are identical at any Workers/DatagenWorkers setting —
// parallelism is a pure speed knob, exactly as for the corpus generators.
func TestComposedDeterministicAcrossWorkers(t *testing.T) {
	base := runComposed(t, workloads.Params{Seed: 2014, Scale: 1, Workers: 1, DatagenWorkers: 1})
	for _, par := range []workloads.Params{
		{Seed: 2014, Scale: 1, Workers: 8, DatagenWorkers: 1},
		{Seed: 2014, Scale: 1, Workers: 3, DatagenWorkers: 4},
	} {
		got := runComposed(t, par)
		if got.Counters["pattern_digest"] != base.Counters["pattern_digest"] {
			t.Fatalf("pattern_digest differs at workers=%d/datagen=%d: %d vs %d",
				par.Workers, par.DatagenWorkers, got.Counters["pattern_digest"], base.Counters["pattern_digest"])
		}
		if got.Counters["ops"] != base.Counters["ops"] || got.Counters["records"] != base.Counters["records"] {
			t.Fatalf("counters differ across worker counts: %+v vs %+v", got.Counters, base.Counters)
		}
		if len(got.Ops) != len(base.Ops) {
			t.Fatalf("op cells differ: %d vs %d", len(got.Ops), len(base.Ops))
		}
		for i := range got.Ops {
			if got.Ops[i].Op != base.Ops[i].Op || got.Ops[i].Count != base.Ops[i].Count {
				t.Fatalf("op %q count %d vs %q count %d",
					got.Ops[i].Op, got.Ops[i].Count, base.Ops[i].Op, base.Ops[i].Count)
			}
		}
	}
	// A different seed must change the digest — the digest actually
	// witnesses the computation.
	other := runComposed(t, workloads.Params{Seed: 99, Scale: 1, Workers: 2, DatagenWorkers: 2})
	if other.Counters["pattern_digest"] == base.Counters["pattern_digest"] {
		t.Fatal("pattern_digest identical across different seeds")
	}
}

// TestComposedRecordsPerPhase: operations record under "phase/op" labels,
// ops split across phases by their fractions, and the total matches
// OpsPerScale×Scale.
func TestComposedRecordsPerPhase(t *testing.T) {
	res := runComposed(t, workloads.Params{Seed: 7, Scale: 2, Workers: 4, DatagenWorkers: 2})
	var loadOps, serveOps uint64
	for _, op := range res.Ops {
		switch {
		case strings.HasPrefix(op.Op, "load/"):
			loadOps += op.Count
		case strings.HasPrefix(op.Op, "serve/"):
			serveOps += op.Count
		}
	}
	total := int64(loadOps + serveOps)
	if want := int64(600 * 2); total != want {
		t.Fatalf("recorded %d phase ops, want %d", total, want)
	}
	if res.Counters["ops"] != total {
		t.Fatalf("ops counter %d != recorded %d", res.Counters["ops"], total)
	}
	// The load phase owns 40% of the stream.
	if got := float64(loadOps) / float64(total); got < 0.39 || got > 0.41 {
		t.Fatalf("load phase ran %.2f of the stream, want 0.40", got)
	}
}

// TestPhaseBounds pins the fraction→index arithmetic: bounds are
// monotonic, cover the stream, and rounding lands on the last phase.
func TestPhaseBounds(t *testing.T) {
	phases := []execPhase{{frac: 1.0 / 3}, {frac: 1.0 / 3}, {frac: 1.0 / 3}}
	bounds := phaseBounds(phases, 100)
	if bounds[2] != 100 {
		t.Fatalf("last bound %d, want 100", bounds[2])
	}
	if bounds[0] != 33 || bounds[1] != 67 {
		t.Fatalf("bounds = %v", bounds)
	}
	if phaseAt(bounds, 0) != 0 || phaseAt(bounds, 33) != 1 || phaseAt(bounds, 99) != 2 {
		t.Fatalf("phaseAt misassigns: %d %d %d", phaseAt(bounds, 0), phaseAt(bounds, 33), phaseAt(bounds, 99))
	}
}

// TestOpsDeterministic: every builtin operation's fingerprint stream is a
// pure function of (records, RNG stream) — two contexts with equal state
// produce equal fingerprints.
func TestOpsDeterministic(t *testing.T) {
	records := []string{
		"host1 - - [x] GET /a 200", "host2 - - [x] GET /b 404",
		"host1 - - [x] GET /c 200", "host3 - - [x] GET /d 500",
	}
	for _, name := range Operations() {
		op, _ := Lookup(name)
		a := &OpContext{RNG: stats.NewRNG(5), Records: records, Store: map[uint64]string{}}
		b := &OpContext{RNG: stats.NewRNG(5), Records: records, Store: map[uint64]string{}}
		for i := 0; i < 50; i++ {
			fa, fb := op.Apply(a), op.Apply(b)
			if fa != fb {
				t.Fatalf("%s: fingerprint diverges at step %d: %d vs %d", name, i, fa, fb)
			}
		}
	}
}
