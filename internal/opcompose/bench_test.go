package opcompose

import (
	"fmt"
	"testing"
	"time"

	"github.com/bdbench/bdbench/internal/stats"
)

var benchSink uint64

// BenchmarkComposedDispatch measures the composed workload's per-operation
// hot path in isolation: phase dispatch, weighted op draw, clocking and
// the op body over a resident record window, with the observation buffered
// exactly as Run does — on a fixed clock so time-source cost is excluded.
// benchdiff gates both ns/op and allocs/op (the steady-state dispatch loop
// allocates nothing).
func BenchmarkComposedDispatch(b *testing.B) {
	w, err := Compile(Pattern{
		Name:        "bench",
		Ops:         []OpWeight{{Op: "filter"}, {Op: "aggregate", Weight: 2}, {Op: "scan"}},
		OpsPerScale: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	cw := w.(*composed)
	base := time.Unix(1000, 0)
	cw.SetClock(func() time.Time { return base })
	g := stats.NewRNG(42)
	records := make([]string, 256)
	for i := range records {
		records[i] = fmt.Sprintf("host%d - - [01/Mar/2014:00:00:%02d +0000] \"GET /%s HTTP/1.1\" 200 %d",
			g.IntN(64), i%60, g.RandomWord(3, 10), g.IntN(4096))
	}
	octx := &OpContext{RNG: g, Records: records, Store: make(map[uint64]string, 64)}
	ph := &cw.phases[0]
	buf := make([]obs, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := 0
		if ph.alias != nil {
			j = ph.alias.Sample(g)
		}
		start := cw.now()
		fp := ph.ops[j].Apply(octx)
		buf = append(buf, obs{op: int32(j), dur: cw.now().Sub(start)})
		benchSink ^= fp
	}
	if len(buf) != b.N {
		b.Fatal("observation buffer lost entries")
	}
}
