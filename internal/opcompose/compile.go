package opcompose

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/bdbench/bdbench/internal/datagen"
	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/stacks"
	"github.com/bdbench/bdbench/internal/stats"
	"github.com/bdbench/bdbench/internal/workloads"
)

// chunkOps is the operation count per execution chunk: the unit of
// parallelism of the composed operation stream, exactly like a datagen
// chunk is the unit of corpus generation. Each chunk derives its RNG from
// (seed, chunk index), so the stream's outputs are identical at any worker
// count.
const chunkOps = 512

// Compile validates the pattern against the operation and corpus
// registries and returns the synthetic workload it declares. The workload
// is indistinguishable from a built-in to everything downstream: it runs
// on the engine, records through pre-resolved OpRefs under "phase/op"
// labels, regenerates its corpus from the seed, and its operation stream
// partitions into chunks whose results are byte-identical at any
// Workers/DatagenWorkers setting.
func Compile(p Pattern) (workloads.Workload, error) {
	n := p.Normalized()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if n.Name == "" {
		return nil, fmt.Errorf("opcompose: %s: pattern has no name", n.describe())
	}
	if _, ok := datagen.Lookup(n.Corpus); !ok {
		return nil, fmt.Errorf("opcompose: %s: unknown corpus %q (have: %s)",
			n.describe(), n.Corpus, strings.Join(datagen.Generators(), ", "))
	}
	phases := make([]execPhase, len(n.Phases))
	for i, ph := range n.Phases {
		ops := make([]Operation, len(ph.Ops))
		weights := make([]float64, len(ph.Ops))
		for j, ow := range ph.Ops {
			op, ok := Lookup(ow.Op)
			if !ok {
				return nil, fmt.Errorf("opcompose: %s: phase %q: unknown operation %q (have: %s)",
					n.describe(), ph.Name, ow.Op, strings.Join(Operations(), ", "))
			}
			ops[j] = op
			weights[j] = ow.Weight
		}
		phases[i] = execPhase{name: ph.Name, ops: ops, frac: ph.Fraction, rate: ph.Rate}
		if len(ops) > 1 {
			phases[i].alias = stats.NewAlias(weights)
		}
	}
	return &composed{p: n, phases: phases, now: time.Now}, nil //bdvet:allow detnondet -- production default for the injected latency clock; determinism tests override via SetClock
}

// execPhase is one compiled phase: resolved operations, a weighted sampler
// (nil for a single-op phase), and the declared share and pacing.
type execPhase struct {
	name  string
	ops   []Operation
	alias *stats.Alias
	frac  float64
	rate  float64
}

// composed is a compiled pattern. It satisfies workloads.Workload.
type composed struct {
	p      Pattern
	phases []execPhase
	// now is the latency clock (default time.Now); SetClock freezes it so
	// equivalence tests produce byte-identical artifacts.
	now func() time.Time
}

// Name implements workloads.Workload.
func (w *composed) Name() string { return w.p.Name }

// Category implements workloads.Workload.
func (w *composed) Category() workloads.Category { return workloads.Category(w.p.Category) }

// Domain implements workloads.Workload.
func (w *composed) Domain() string { return "operation patterns" }

// StackTypes implements workloads.Workload; composed workloads run on the
// abstract substrate, like prescription workloads on the reference
// executor.
func (w *composed) StackTypes() []stacks.Type { return []stacks.Type{stacks.Type("abstract")} }

// SetClock overrides the workload's latency clock — the determinism seam
// the scenario runner wires to its own Options.Now, so a frozen-clock run
// records all-zero durations and the artifact bytes depend only on the
// seed.
func (w *composed) SetClock(now func() time.Time) { w.now = now }

// obs is one buffered observation: which (phase, op) cell it belongs to
// and the measured duration. Observations are buffered per chunk and
// replayed in plan order after the parallel stream completes, so the
// sample capture order — and with it the artifact bytes — is deterministic
// at any worker count.
type obs struct {
	phase, op int32
	dur       time.Duration
}

// chunkResult is one chunk's buffered observations and its fingerprint.
type chunkResult struct {
	obs []obs
	fp  uint64
}

// fnvOffset and fnvPrime fold chunk fingerprints into the pattern digest.
const (
	fnvOffset = 1469598103934665603
	fnvPrime  = 1099511628211
)

// Run implements workloads.Workload: generate the corpus through the
// chunked datagen pipeline, execute the operation stream chunk-parallel,
// replay the buffered observations in plan order, and record the
// deterministic pattern digest.
func (w *composed) Run(ctx context.Context, params workloads.Params, c *metrics.Collector) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	params = params.WithDefaults()
	cg, ok := datagen.Lookup(w.p.Corpus)
	if !ok {
		return fmt.Errorf("opcompose: corpus %q is not registered", w.p.Corpus)
	}
	// Datagen elapsed is measured on the workload's own clock (not the
	// Stat's wall clock) so frozen-clock runs stay byte-identical.
	t0 := w.now()
	corpus, stat, err := datagen.Build(cg, params.Seed, params.Scale, params.DatagenWorkers)
	if err != nil {
		return fmt.Errorf("opcompose: corpus %q: %w", w.p.Corpus, err)
	}
	c.RecordDatagen(w.now().Sub(t0), stat.Items)
	records := splitLines(corpus)
	if len(records) == 0 {
		return fmt.Errorf("opcompose: corpus %q generated no records at scale %d", w.p.Corpus, params.Scale)
	}

	total := int64(w.p.OpsPerScale) * int64(params.Scale)
	bounds := phaseBounds(w.phases, total)
	refs := make([][]metrics.OpRef, len(w.phases))
	for i, ph := range w.phases {
		refs[i] = make([]metrics.OpRef, len(ph.ops))
		for j, op := range ph.ops {
			refs[i][j] = c.Op(ph.name + "/" + op.Name)
		}
	}
	// One shared token bucket per paced phase: chunks running that phase's
	// ops all drain it, so the phase's global rate holds at any worker
	// count. Pacing shapes timing only — never outputs.
	buckets := make([]*datagen.TokenBucket, len(w.phases))
	for i, ph := range w.phases {
		if ph.rate > 0 {
			buckets[i] = datagen.NewTokenBucket(ph.rate, ph.rate/10+1)
		}
	}

	// Decorrelate the op stream from the corpus generator: both derive
	// chunk RNGs from (seed, chunk index), so give the stream its own root.
	opSeed := stats.NewRNG(params.Seed).Split("opcompose/"+w.p.Name, 0).Seed()
	plan := datagen.PlanChunks(total, chunkOps)
	results, err := datagen.Generate(opSeed, plan, params.Workers, func(g *stats.RNG, ch datagen.Chunk) ([]chunkResult, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res := chunkResult{obs: make([]obs, 0, ch.Len()), fp: fnvOffset}
		octx := &OpContext{RNG: g, Records: records, Store: make(map[uint64]string, 64)}
		pi := phaseAt(bounds, ch.Start)
		for idx := ch.Start; idx < ch.End; idx++ {
			for idx >= bounds[pi] {
				pi++
			}
			ph := &w.phases[pi]
			j := 0
			if ph.alias != nil {
				j = ph.alias.Sample(g)
			}
			if b := buckets[pi]; b != nil {
				b.Take(1)
			}
			start := w.now()
			fp := ph.ops[j].Apply(octx)
			res.obs = append(res.obs, obs{phase: int32(pi), op: int32(j), dur: w.now().Sub(start)})
			res.fp = (res.fp ^ fp) * fnvPrime
		}
		return []chunkResult{res}, nil
	})
	if err != nil {
		return fmt.Errorf("opcompose: %w", err)
	}

	// Replay in plan order: chunk k's observations always land before
	// chunk k+1's, no matter which workers executed them.
	var digest uint64 = fnvOffset
	var done int64
	for _, r := range results {
		for _, o := range r.obs {
			refs[o.phase][o.op].Observe(o.dur)
		}
		done += int64(len(r.obs))
		digest = (digest ^ r.fp) * fnvPrime
	}
	c.Add("ops", done)
	c.Add("records", int64(len(records)))
	// The digest is the cross-run equivalence witness: same (pattern,
	// seed, scale) must yield the same value at any worker count, on any
	// machine. Masked to keep the int64 counter non-negative.
	c.Add("pattern_digest", int64(digest&(1<<62-1)))
	return ctx.Err()
}

// phaseBounds turns phase fractions into cumulative operation-index
// bounds: phase i owns stream indices [bounds[i-1], bounds[i]). Rounding
// error lands on the last phase, which always ends at total.
func phaseBounds(phases []execPhase, total int64) []int64 {
	bounds := make([]int64, len(phases))
	cum := 0.0
	for i, ph := range phases {
		cum += ph.frac
		bounds[i] = int64(cum*float64(total) + 0.5)
	}
	bounds[len(bounds)-1] = total
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			bounds[i] = bounds[i-1]
		}
	}
	return bounds
}

// phaseAt returns the phase owning stream index idx.
func phaseAt(bounds []int64, idx int64) int {
	for i, b := range bounds {
		if idx < b {
			return i
		}
	}
	return len(bounds) - 1
}

// splitLines splits the corpus into one record per line, dropping the
// trailing empty slot of a newline-terminated corpus.
func splitLines(corpus []byte) []string {
	records := strings.Split(string(corpus), "\n")
	for len(records) > 0 && records[len(records)-1] == "" {
		records = records[:len(records)-1]
	}
	return records
}
