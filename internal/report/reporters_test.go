package report

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/scenario"
	"github.com/bdbench/bdbench/internal/workloads"
)

func sampleOutcome() *scenario.Outcome {
	return &scenario.Outcome{
		Spec: scenario.Spec{Name: "sample", Entries: []scenario.Entry{{Suite: "S"}}}.Normalized(),
		Results: []scenario.Result{
			{
				Suite: "S", Workload: "w1", Category: workloads.Online,
				Result: metrics.Result{Name: "w1", Elapsed: 120 * time.Millisecond, Throughput: 1000},
				Reps:   []metrics.Result{{}, {}},
			},
			{
				Workload: "w2", Category: workloads.Offline,
				Err: errors.New("boom"), Error: "boom",
			},
		},
		Summary:  map[workloads.Category]float64{workloads.Online: 1000},
		Failures: 1,
	}
}

func TestTextReporter(t *testing.T) {
	var b strings.Builder
	if err := (TextReporter{}).Report(&b, sampleOutcome()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"w1", "FAIL: boom", "online services", "1 workload(s) failed", "1000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownReporter(t *testing.T) {
	var b strings.Builder
	if err := (MarkdownReporter{}).Report(&b, sampleOutcome()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "| workload |") || !strings.Contains(out, "| w1 |") {
		t.Fatalf("markdown table malformed:\n%s", out)
	}
}

func TestJSONReporterRoundTrips(t *testing.T) {
	var b strings.Builder
	if err := (JSONReporter{}).Report(&b, sampleOutcome()); err != nil {
		t.Fatal(err)
	}
	var back scenario.Outcome
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if back.Spec.Name != "sample" || len(back.Results) != 2 {
		t.Fatalf("decoded %+v", back)
	}
	if back.Results[1].Error != "boom" {
		t.Fatalf("error not exported: %+v", back.Results[1])
	}
	if back.Failures != 1 {
		t.Fatalf("failures %d", back.Failures)
	}
}
