// Package report is bdbench's result analyzer and reporter (the Execution
// layer's last component in Figure 2): aligned-text and markdown tables,
// ASCII bar charts for figure-style series, and JSON export of run
// outcomes.
package report

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"github.com/bdbench/bdbench/internal/metrics"
)

// Table renders rows under headers with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders rows as a GitHub-flavored markdown table.
func Markdown(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(headers, " | ") + " |\n")
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// BarChart renders labeled values as a horizontal ASCII bar chart scaled to
// width characters.
func BarChart(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	maxLabel, maxVal := 0, 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if i < len(values) && values[i] > maxVal {
			maxVal = values[i]
		}
	}
	var b strings.Builder
	for i, l := range labels {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		n := 0
		if maxVal > 0 {
			n = int(v / maxVal * float64(width))
		}
		fmt.Fprintf(&b, "%-*s | %s %.4g\n", maxLabel, l, strings.Repeat("#", n), v)
	}
	return b.String()
}

// Series is one named data series for line-style figures.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	XLabel string
	YLabel string
}

// FormatSeries renders a series as a two-column table; plotting is left to
// downstream tooling, bdbench reports the numbers.
func FormatSeries(s Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (%s vs %s)\n", s.Name, s.YLabel, s.XLabel)
	for i := range s.X {
		y := 0.0
		if i < len(s.Y) {
			y = s.Y[i]
		}
		fmt.Fprintf(&b, "%12.4g  %12.6g\n", s.X[i], y)
	}
	return b.String()
}

// ResultRows converts workload results into table rows: name, elapsed,
// throughput, p50/p99 of the dominant operation. Substrate echoes (stack
// instrumentation underneath the workload's own measurements) are skipped
// when picking the dominant op unless no workload-level op exists, so the
// latency columns describe what the workload's user perceives.
func ResultRows(results []metrics.Result) [][]string {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		p50, p99 := "-", "-"
		var dominant *metrics.OpStats
		for i := range r.Ops {
			op := &r.Ops[i]
			switch {
			case dominant == nil:
				dominant = op
			case dominant.Substrate != op.Substrate:
				if dominant.Substrate {
					dominant = op
				}
			case op.Count > dominant.Count:
				dominant = op
			}
		}
		if dominant != nil {
			p50 = dominant.P50.Round(time.Microsecond).String()
			p99 = dominant.P99.Round(time.Microsecond).String()
		}
		rows = append(rows, []string{
			r.Name,
			r.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.Throughput),
			p50,
			p99,
		})
	}
	return rows
}

// JSON marshals any report payload with indentation.
func JSON(v any) (string, error) {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", fmt.Errorf("report: %w", err)
	}
	return string(raw), nil
}
