package report

import (
	"strings"
	"testing"
	"time"

	"github.com/bdbench/bdbench/internal/metrics"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"short", "1"},
		{"a-much-longer-name", "22222"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines %d", len(lines))
	}
	// All rows align: the value column starts at the same offset.
	idx := strings.Index(lines[0], "value")
	for _, l := range lines[2:] {
		if len(l) < idx {
			t.Fatalf("row too short: %q", l)
		}
	}
}

func TestMarkdown(t *testing.T) {
	out := Markdown([]string{"a", "b"}, [][]string{{"1", "2"}})
	if !strings.HasPrefix(out, "| a | b |") {
		t.Fatalf("markdown header: %q", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Fatal("markdown separator missing")
	}
	if !strings.Contains(out, "| 1 | 2 |") {
		t.Fatal("markdown row missing")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"x", "y"}, []float64{10, 5}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines %d", len(lines))
	}
	if strings.Count(lines[0], "#") != 20 {
		t.Fatalf("max bar should fill width: %q", lines[0])
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Fatalf("half bar: %q", lines[1])
	}
}

func TestBarChartZeroValues(t *testing.T) {
	out := BarChart([]string{"z"}, []float64{0}, 10)
	if !strings.Contains(out, "z") {
		t.Fatal("label missing")
	}
}

func TestFormatSeries(t *testing.T) {
	s := Series{Name: "scaling", X: []float64{1, 2}, Y: []float64{10, 19}, XLabel: "workers", YLabel: "rate"}
	out := FormatSeries(s)
	if !strings.Contains(out, "scaling") || !strings.Contains(out, "19") {
		t.Fatalf("series output %q", out)
	}
}

func TestResultRows(t *testing.T) {
	c := metrics.NewCollector("wl")
	c.ObserveLatency("read", time.Millisecond)
	c.SetElapsed(time.Second)
	rows := ResultRows([]metrics.Result{c.Snapshot()})
	if len(rows) != 1 || rows[0][0] != "wl" {
		t.Fatalf("rows %v", rows)
	}
	// A result without ops renders dashes.
	empty := metrics.NewCollector("empty")
	empty.SetElapsed(time.Second)
	rows = ResultRows([]metrics.Result{empty.Snapshot()})
	if rows[0][3] != "-" {
		t.Fatalf("empty ops row %v", rows[0])
	}
}

func TestResultRowsPreferWorkloadOpsOverSubstrate(t *testing.T) {
	// A substrate echo with a higher count must not shadow the workload-level
	// op in the p50/p99 columns.
	c := metrics.NewCollector("wl")
	for i := 0; i < 10; i++ {
		c.ObserveLatency("read", 4*time.Millisecond)
	}
	sub := metrics.SubstrateShardOf(c)
	for i := 0; i < 100; i++ {
		sub.ObserveLatency("db_execute", 9*time.Second)
	}
	c.SetElapsed(time.Second)
	rows := ResultRows([]metrics.Result{c.Snapshot()})
	p50, err := time.ParseDuration(rows[0][3])
	if err != nil || p50 > 100*time.Millisecond {
		t.Fatalf("p50 column %q, want the ~4ms workload-level op, not the 9s substrate echo", rows[0][3])
	}
	// With only substrate ops recorded, fall back to them rather than dashes.
	onlySub := metrics.NewCollector("subonly")
	s := metrics.SubstrateShardOf(onlySub)
	s.ObserveLatency("map_task", 2*time.Millisecond)
	onlySub.SetElapsed(time.Second)
	rows = ResultRows([]metrics.Result{onlySub.Snapshot()})
	if _, err := time.ParseDuration(rows[0][3]); err != nil {
		t.Fatalf("substrate-only p50 %q, want a duration fallback, not dashes", rows[0][3])
	}
}

func TestJSON(t *testing.T) {
	out, err := JSON(map[string]int{"a": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "\"a\": 1") {
		t.Fatalf("json %q", out)
	}
	if _, err := JSON(make(chan int)); err == nil {
		t.Fatal("unmarshalable value accepted")
	}
}
