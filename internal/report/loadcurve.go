package report

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/bdbench/bdbench/internal/loadgen"
)

// This file renders throughput-vs-latency curves: the headline figure of a
// latency-under-load evaluation. A LoadCurve is a sequence of open-loop
// runs of the same workload at increasing offered rates; rendering it as a
// table (or exporting it as JSON) shows where achieved throughput stops
// tracking offered load and the latency percentiles take off — the
// saturation knee.

// LoadPoint is one point of a load curve: one open-loop run at one offered
// rate.
type LoadPoint struct {
	// Offered and Achieved are the configured and sustained rates (ops/s).
	Offered  float64 `json:"offered"`
	Achieved float64 `json:"achieved"`
	// Dispatched counts operations started; Errors the ones that failed.
	Dispatched int `json:"dispatched"`
	Errors     int `json:"errors,omitempty"`
	// The latency percentiles are measured from each operation's intended
	// start, so queueing delay under overload is fully visible.
	P50  time.Duration `json:"p50"`
	P95  time.Duration `json:"p95"`
	P99  time.Duration `json:"p99"`
	Max  time.Duration `json:"max"`
	Mean time.Duration `json:"mean"`
}

// PointFromStats digests one open-loop run into a curve point.
func PointFromStats(st *loadgen.Stats) LoadPoint {
	return LoadPoint{
		Offered:    st.Offered,
		Achieved:   st.Achieved,
		Dispatched: st.Dispatched,
		Errors:     st.Errors,
		P50:        st.Latency.P50,
		P95:        st.Latency.P95,
		P99:        st.Latency.P99,
		Max:        st.Latency.Max,
		Mean:       st.Latency.Mean,
	}
}

// LoadCurve is a workload's throughput-vs-latency curve: one point per
// offered rate, in sweep order.
type LoadCurve struct {
	Workload string        `json:"workload"`
	Arrival  string        `json:"arrival"`
	Window   time.Duration `json:"window"`
	Points   []LoadPoint   `json:"points"`
}

// loadCurveHeaders is the numeric tail of loadHeaders (reporters.go); the
// cells come from the shared loadCells helper.
var loadCurveHeaders = []string{"offered", "achieved", "p50", "p95", "p99", "max", "errs"}

func (c LoadCurve) rows() [][]string {
	rows := make([][]string, 0, len(c.Points))
	for _, p := range c.Points {
		rows = append(rows, loadCells(p.Offered, p.Achieved, p.P50, p.P95, p.P99, p.Max, p.Errors))
	}
	return rows
}

// header renders the curve's provenance line.
func (c LoadCurve) header() string {
	return fmt.Sprintf("load curve: workload=%s arrival=%s window=%v (latency from intended start)",
		c.Workload, c.Arrival, c.Window)
}

// Text renders the curve as an aligned-text table.
func (c LoadCurve) Text() string {
	return c.header() + "\n\n" + Table(loadCurveHeaders, c.rows())
}

// Markdown renders the curve as a GitHub-flavored markdown table.
func (c LoadCurve) Markdown() string {
	return "**" + c.header() + "**\n\n" + Markdown(loadCurveHeaders, c.rows())
}

// JSON exports the curve as indented JSON.
func (c LoadCurve) JSON() (string, error) {
	raw, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return "", fmt.Errorf("report: load curve: %w", err)
	}
	return string(raw) + "\n", nil
}

// Render renders the curve in the named format: "text", "markdown" or
// "json".
func (c LoadCurve) Render(format string) (string, error) {
	switch format {
	case "text":
		return c.Text(), nil
	case "markdown":
		return c.Markdown(), nil
	case "json":
		return c.JSON()
	default:
		return "", fmt.Errorf("report: unknown load curve format %q (have: text, markdown, json)", format)
	}
}
