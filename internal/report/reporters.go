package report

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/bdbench/bdbench/internal/scenario"
	"github.com/bdbench/bdbench/internal/workloads"
)

// This file implements scenario.Reporter — the pluggable exporters behind
// the public bdbench API and the CLI's -format flag. Each reporter renders
// a scenario Outcome: the text and markdown reporters produce result
// tables with a per-category summary, the JSON reporter exports the whole
// outcome for downstream tooling.

// TextReporter renders the outcome as aligned-text tables.
type TextReporter struct{}

// Format implements scenario.Reporter.
func (TextReporter) Format() string { return "text" }

// Report implements scenario.Reporter.
func (TextReporter) Report(w io.Writer, o *scenario.Outcome) error {
	if _, err := io.WriteString(w, Table(outcomeHeaders, outcomeRows(o))); err != nil {
		return err
	}
	if err := writeLoadTable(w, o, false); err != nil {
		return err
	}
	if err := writePhaseTable(w, o, false); err != nil {
		return err
	}
	return writeSummary(w, o, "")
}

// MarkdownReporter renders the outcome as GitHub-flavored markdown.
type MarkdownReporter struct{}

// Format implements scenario.Reporter.
func (MarkdownReporter) Format() string { return "markdown" }

// Report implements scenario.Reporter.
func (MarkdownReporter) Report(w io.Writer, o *scenario.Outcome) error {
	if _, err := io.WriteString(w, Markdown(outcomeHeaders, outcomeRows(o))); err != nil {
		return err
	}
	if err := writeLoadTable(w, o, true); err != nil {
		return err
	}
	if err := writePhaseTable(w, o, true); err != nil {
		return err
	}
	return writeSummary(w, o, "**")
}

// JSONReporter exports the full outcome — normalized spec, step trace,
// per-workload results with repetitions, summary and probes — as JSON.
type JSONReporter struct {
	// Compact disables indentation.
	Compact bool
}

// Format implements scenario.Reporter.
func (JSONReporter) Format() string { return "json" }

// Report implements scenario.Reporter.
func (r JSONReporter) Report(w io.Writer, o *scenario.Outcome) error {
	enc := json.NewEncoder(w)
	if !r.Compact {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(o); err != nil {
		return fmt.Errorf("report: json: %w", err)
	}
	return nil
}

var outcomeHeaders = []string{"workload", "suite", "category", "elapsed", "dataprep", "ops/s", "reps", "status"}

func outcomeRows(o *scenario.Outcome) [][]string {
	rows := make([][]string, 0, len(o.Results))
	for _, r := range o.Results {
		status := "ok"
		if r.Err != nil {
			status = "FAIL: " + r.Err.Error()
		} else if r.Error != "" {
			status = "FAIL: " + r.Error
		}
		// The ops/s cell is always the median repetition (matching elapsed);
		// with several reps the spread across them is shown alongside.
		tput := fmt.Sprintf("%.0f", r.Result.Throughput)
		if len(r.Reps) > 1 {
			tput = fmt.Sprintf("%.0f ±%.0f", r.Result.Throughput, r.Throughput.StdDev)
		}
		suite := r.Suite
		if suite == "" {
			suite = "-"
		}
		// Data preparation is part of elapsed, reported separately so the
		// generation cost the paper accounts for stays visible.
		prep := "-"
		if r.Result.DataPrep > 0 {
			prep = r.Result.DataPrep.Round(time.Millisecond).String()
			if r.Result.DataPrep < time.Millisecond {
				prep = "<1ms"
			}
		}
		rows = append(rows, []string{
			r.Workload, suite, string(r.Category),
			r.Result.Elapsed.Round(time.Millisecond).String(),
			prep,
			tput,
			fmt.Sprintf("%d", len(r.Reps)),
			status,
		})
	}
	return rows
}

// loadHeaders are the columns of the latency-under-load table. Latency
// percentiles are measured from each operation's intended start, so they
// include queueing delay behind slow operations. The numeric tail matches
// loadCurveHeaders — both render through loadCells.
var loadHeaders = []string{"workload", "arrival", "offered", "achieved", "p50", "p95", "p99", "max", "errs"}

// LoadRows renders one latency-under-load row per open-loop result; empty
// when the outcome ran closed-loop.
func LoadRows(o *scenario.Outcome) [][]string {
	var rows [][]string
	for _, r := range o.Results {
		if r.Load == nil {
			continue
		}
		cells := loadCells(r.Load.Offered, r.Load.Achieved,
			r.Load.Latency.P50, r.Load.Latency.P95, r.Load.Latency.P99, r.Load.Latency.Max,
			r.Load.Errors)
		rows = append(rows, append([]string{r.Workload, r.Load.Arrival}, cells...))
	}
	return rows
}

// loadCells renders the numeric cells shared by the per-outcome load table
// and the load-curve table, so the two can never drift apart in format.
func loadCells(offered, achieved float64, p50, p95, p99, max time.Duration, errs int) []string {
	return []string{
		fmt.Sprintf("%.0f/s", offered),
		fmt.Sprintf("%.0f/s", achieved),
		roundLatency(p50),
		roundLatency(p95),
		roundLatency(p99),
		roundLatency(max),
		fmt.Sprintf("%d", errs),
	}
}

// roundLatency renders a duration at a resolution fit for a table cell.
func roundLatency(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}

// writeLoadTable appends the latency-under-load table when any result ran
// open-loop.
func writeLoadTable(w io.Writer, o *scenario.Outcome, markdown bool) error {
	rows := LoadRows(o)
	if len(rows) == 0 {
		return nil
	}
	title := "\nlatency under load (from intended start)\n"
	render := Table
	if markdown {
		title = "\n**latency under load (from intended start)**\n\n"
		render = Markdown
	}
	if _, err := io.WriteString(w, title); err != nil {
		return err
	}
	_, err := io.WriteString(w, render(loadHeaders, rows))
	return err
}

// phaseHeaders are the columns of the operation-pattern breakdown. Each
// row is one (phase, operation) cell of a composed workload's stream.
var phaseHeaders = []string{"workload", "phase", "op", "count", "mean", "p95", "max"}

// PhaseRows renders one row per (phase, operation) cell of every composed
// workload in the outcome; empty when no result recorded pattern-style
// "phase/op" labels. Rows keep the collector's observation order, which is
// the pattern's declared phase order.
func PhaseRows(o *scenario.Outcome) [][]string {
	var rows [][]string
	for _, r := range o.Results {
		// Only composed workloads record the pattern digest; its presence
		// distinguishes their "phase/op" labels from ordinary op names that
		// happen to contain a slash.
		if _, ok := r.Result.Counters["pattern_digest"]; !ok {
			continue
		}
		for _, op := range r.Result.Ops {
			phase, name, ok := cutSlash(op.Op)
			if !ok || op.Substrate {
				continue
			}
			rows = append(rows, []string{
				r.Workload, phase, name,
				fmt.Sprintf("%d", op.Count),
				roundLatency(op.Mean),
				roundLatency(op.P95),
				roundLatency(op.Max),
			})
		}
	}
	return rows
}

// cutSlash splits "phase/op" at the first slash.
func cutSlash(s string) (phase, op string, ok bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}

// writePhaseTable appends the per-phase operation breakdown when any
// result came from a composed operation pattern.
func writePhaseTable(w io.Writer, o *scenario.Outcome, markdown bool) error {
	rows := PhaseRows(o)
	if len(rows) == 0 {
		return nil
	}
	title := "\noperation pattern breakdown (per phase)\n"
	render := Table
	if markdown {
		title = "\n**operation pattern breakdown (per phase)**\n\n"
		render = Markdown
	}
	if _, err := io.WriteString(w, title); err != nil {
		return err
	}
	_, err := io.WriteString(w, render(phaseHeaders, rows))
	return err
}

// writeSummary appends the per-category digest and probe evidence; em
// wraps emphasized labels (markdown bolding, empty for text).
func writeSummary(w io.Writer, o *scenario.Outcome, em string) error {
	if len(o.Summary) > 0 {
		if _, err := fmt.Fprintf(w, "\n%ssummary (mean ops/s by category)%s\n", em, em); err != nil {
			return err
		}
		for _, cat := range []workloads.Category{workloads.Online, workloads.Offline, workloads.Realtime} {
			if v, ok := o.Summary[cat]; ok {
				if _, err := fmt.Fprintf(w, "  %-22s %12.0f\n", cat, v); err != nil {
					return err
				}
			}
		}
	}
	for _, p := range o.Probes {
		if _, err := fmt.Fprintf(w, "%sdata generation probe%s: suite=%s volume=%q veracity=%q\n",
			em, em, p.Suite, p.Volume, p.Veracity); err != nil {
			return err
		}
	}
	if o.Failures > 0 {
		if _, err := fmt.Fprintf(w, "%s%d workload(s) failed%s\n", em, o.Failures, em); err != nil {
			return err
		}
	}
	return nil
}
