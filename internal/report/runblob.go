package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/bdbench/bdbench/internal/runstore"
	"github.com/bdbench/bdbench/internal/scenario"
)

// This file is the blob-backed side of the reporter: any saved run artifact
// (internal/runstore) re-renders through the same reporters a live run uses,
// and a runstore.Comparison renders as the delta tables behind
// `bdbench compare`.

// RenderRun re-renders a saved run artifact in the named format ("text",
// "markdown", "json"). The blob's payload carries the writer's full result
// document verbatim — a scenario Outcome, a LoadCurve, or benchdiff results
// — so a saved scenario run renders exactly as the live run did.
func RenderRun(w io.Writer, run *runstore.Run, format string) error {
	switch run.Meta.Kind {
	case runstore.KindScenario:
		var o scenario.Outcome
		if err := json.Unmarshal(run.Meta.Payload, &o); err != nil {
			return fmt.Errorf("report: run payload: %w", err)
		}
		rep, err := ReporterFor(format)
		if err != nil {
			return err
		}
		return rep.Report(w, &o)
	case runstore.KindLoadCurve:
		var c LoadCurve
		if err := json.Unmarshal(run.Meta.Payload, &c); err != nil {
			return fmt.Errorf("report: run payload: %w", err)
		}
		s, err := c.Render(format)
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, s)
		return err
	case runstore.KindBench, runstore.KindCorpus:
		// Bench and corpus payloads are self-describing JSON documents
		// (benchdiff results, DataGenStat); render them as-is.
		var doc any
		if err := json.Unmarshal(run.Meta.Payload, &doc); err != nil {
			return fmt.Errorf("report: run payload: %w", err)
		}
		s, err := JSON(doc)
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, s+"\n")
		return err
	default:
		return fmt.Errorf("report: unknown run kind %q", run.Meta.Kind)
	}
}

// BuildLoadCurveArtifact converts a finished loadcurve sweep into a run
// artifact: the rendered curve's JSON as the payload (so RenderRun shows
// the same table the live sweep printed) and, when the per-rate runs
// captured raw streams, one series per swept point per op — labelled
// "workload@rate/s" so CompareRuns judges two sweeps point-for-point.
// Metadata (spec digest, seed) comes from the first point's outcome; every
// point of one sweep runs the same scenario apart from the offered rate,
// which the label carries.
func BuildLoadCurveArtifact(c LoadCurve, sweeps []*scenario.Outcome, toolVersion string) (*runstore.Run, error) {
	payload, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("report: marshal load curve: %w", err)
	}
	run := &runstore.Run{
		Meta: runstore.Meta{
			Kind:        runstore.KindLoadCurve,
			Name:        "loadcurve " + c.Workload,
			Tool:        "bdbench",
			ToolVersion: toolVersion,
			CreatedUnix: time.Now().Unix(),
			Env:         scenario.CaptureEnv(),
			Payload:     payload,
		},
	}
	for _, out := range sweeps {
		if out == nil {
			continue
		}
		if run.Meta.SpecDigest == "" {
			digest, err := scenario.SpecDigest(out.Spec)
			if err != nil {
				return nil, err
			}
			run.Meta.SpecDigest = digest
			run.Meta.Seed = out.Spec.Seed
		}
		scenario.AppendOutcome(run, out, func(r *scenario.Result) string {
			if r.Load == nil {
				return r.Workload
			}
			return fmt.Sprintf("%s@%g/s", r.Workload, r.Load.Offered)
		})
	}
	return run, nil
}

// ReporterFor returns the reporter for a format name ("text", "markdown",
// "json").
func ReporterFor(format string) (scenario.Reporter, error) {
	switch format {
	case "text":
		return TextReporter{}, nil
	case "markdown":
		return MarkdownReporter{}, nil
	case "json":
		return JSONReporter{}, nil
	default:
		return nil, fmt.Errorf("report: unknown format %q (have: text, markdown, json)", format)
	}
}

// RunInfo renders a one-paragraph identity block for a run artifact — what
// `bdbench compare` prints above the delta tables so the reader knows which
// runs are being compared.
func RunInfo(run *runstore.Run) string {
	m := run.Meta
	var b strings.Builder
	fmt.Fprintf(&b, "%s %q", m.Kind, m.Name)
	switch {
	case m.Tool != "" && m.ToolVersion != "":
		fmt.Fprintf(&b, " (%s %s)", m.Tool, m.ToolVersion)
	case m.Tool != "":
		fmt.Fprintf(&b, " (%s)", m.Tool)
	}
	if m.Seed != 0 || m.Kind == runstore.KindScenario {
		fmt.Fprintf(&b, " seed=%d", m.Seed)
	}
	if m.SpecDigest != "" {
		fmt.Fprintf(&b, " spec=%.12s", m.SpecDigest)
	}
	if m.CreatedUnix != 0 {
		fmt.Fprintf(&b, " created=%s", time.Unix(m.CreatedUnix, 0).UTC().Format(time.RFC3339))
	}
	fmt.Fprintf(&b, " series=%d", len(run.Series))
	return b.String()
}

// FormatComparison renders a comparison in the named format. Text and
// markdown produce the workload and per-series delta tables with the overall
// verdict; JSON exports the whole Comparison document.
func FormatComparison(c *runstore.Comparison, format string) (string, error) {
	switch format {
	case "json":
		s, err := JSON(c)
		if err != nil {
			return "", err
		}
		return s + "\n", nil
	case "text":
		return comparisonTables(c, Table, ""), nil
	case "markdown":
		return comparisonTables(c, Markdown, "**"), nil
	default:
		return "", fmt.Errorf("report: unknown comparison format %q (have: text, markdown, json)", format)
	}
}

func comparisonTables(c *runstore.Comparison, render func([]string, [][]string) string, em string) string {
	var b strings.Builder
	match := "differs"
	if c.SpecMatch {
		match = "match"
	}
	seed := "differs"
	if c.SeedMatch {
		seed = "match"
	}
	fmt.Fprintf(&b, "%scomparison%s: spec %s, seed %s\n", em, em, match, seed)

	if len(c.Workloads) > 0 {
		fmt.Fprintf(&b, "\n%sworkload rates%s\n", em, em)
		if em != "" {
			b.WriteString("\n")
		}
		rows := make([][]string, 0, len(c.Workloads))
		for _, w := range c.Workloads {
			rows = append(rows, []string{
				w.Workload, w.Metric,
				fmt.Sprintf("%.0f/s", w.A), fmt.Sprintf("%.0f/s", w.B),
				ratioCell(w.Ratio), string(w.Verdict),
			})
		}
		b.WriteString(render([]string{"workload", "metric", "a", "b", "b/a", "verdict"}, rows))
	}

	if len(c.Series) > 0 {
		fmt.Fprintf(&b, "\n%slatency quantiles (per workload/op stream)%s\n", em, em)
		if em != "" {
			b.WriteString("\n")
		}
		var rows [][]string
		for _, s := range c.Series {
			name := s.Workload + "/" + s.Op
			if s.Substrate {
				name += " (substrate)"
			}
			if len(s.Quantiles) == 0 {
				rows = append(rows, []string{name, "-", "-", "-", "-", string(s.Verdict)})
				continue
			}
			for _, q := range s.Quantiles {
				rows = append(rows, []string{
					name,
					fmt.Sprintf("p%g", q.Q*100),
					roundLatency(time.Duration(q.A)), roundLatency(time.Duration(q.B)),
					ratioCell(q.Ratio), string(q.Verdict),
				})
				name = "" // repeat the stream name only on its first row
			}
		}
		b.WriteString(render([]string{"stream", "q", "a", "b", "b/a", "verdict"}, rows))
	}

	fmt.Fprintf(&b, "\n%sverdict%s: %s", em, em, c.Verdict)
	if c.Regressions > 0 {
		fmt.Fprintf(&b, " (%d regression(s))", c.Regressions)
	}
	b.WriteString("\n")
	return b.String()
}

func ratioCell(r float64) string {
	if r == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", r)
}
