package report

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/bdbench/bdbench/internal/loadgen"
)

func sampleLoadStats(offered float64) *loadgen.Stats {
	return &loadgen.Stats{
		Arrival: "poisson", Offered: offered, Achieved: offered * 0.9,
		Window: time.Second, Elapsed: time.Second,
		Scheduled: int(offered), Dispatched: int(offered), Errors: 1,
		Latency: loadgen.LatencySummary{
			Count: uint64(offered), Mean: 2 * time.Millisecond,
			P50: time.Millisecond, P95: 4 * time.Millisecond,
			P99: 9 * time.Millisecond, Max: 20 * time.Millisecond,
		},
	}
}

func sampleCurve() LoadCurve {
	return LoadCurve{
		Workload: "wordcount", Arrival: "poisson", Window: time.Second,
		Points: []LoadPoint{
			PointFromStats(sampleLoadStats(100)),
			PointFromStats(sampleLoadStats(200)),
			PointFromStats(sampleLoadStats(400)),
		},
	}
}

// TestLoadCurveFormats renders the same curve in all three formats.
func TestLoadCurveFormats(t *testing.T) {
	c := sampleCurve()

	text, err := c.Render("text")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"wordcount", "poisson", "100/s", "400/s", "p99", "9ms"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text curve missing %q:\n%s", want, text)
		}
	}

	md, err := c.Render("markdown")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "| offered |") || !strings.Contains(md, "| 200/s |") {
		t.Fatalf("markdown curve malformed:\n%s", md)
	}

	js, err := c.Render("json")
	if err != nil {
		t.Fatal(err)
	}
	var back LoadCurve
	if err := json.Unmarshal([]byte(js), &back); err != nil {
		t.Fatalf("json curve does not parse: %v\n%s", err, js)
	}
	if len(back.Points) != 3 || back.Points[2].Offered != 400 || back.Points[2].P99 != 9*time.Millisecond {
		t.Fatalf("json curve lost data: %+v", back)
	}

	if _, err := c.Render("yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestReportersIncludeLoadTable verifies the latency-under-load section
// appears in text and markdown outcomes exactly when a result ran
// open-loop.
func TestReportersIncludeLoadTable(t *testing.T) {
	o := sampleOutcome()
	var b strings.Builder
	if err := (TextReporter{}).Report(&b, o); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "latency under load") {
		t.Fatal("closed-loop outcome grew a load table")
	}

	o.Results[0].Load = sampleLoadStats(100)
	b.Reset()
	if err := (TextReporter{}).Report(&b, o); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"latency under load", "100/s", "90/s", "poisson"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text load table missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	if err := (MarkdownReporter{}).Report(&b, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "| w1 | poisson | 100/s |") {
		t.Fatalf("markdown load table malformed:\n%s", b.String())
	}
}

// TestJSONReporterCarriesLoad verifies the JSON outcome export includes
// the load statistics verbatim.
func TestJSONReporterCarriesLoad(t *testing.T) {
	o := sampleOutcome()
	o.Results[0].Load = sampleLoadStats(100)
	var b strings.Builder
	if err := (JSONReporter{}).Report(&b, o); err != nil {
		t.Fatal(err)
	}
	var back struct {
		Results []struct {
			Workload string         `json:"workload"`
			Load     *loadgen.Stats `json:"load"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Results[0].Load == nil || back.Results[0].Load.Offered != 100 {
		t.Fatalf("json outcome lost load stats: %+v", back.Results[0])
	}
	if back.Results[1].Load != nil {
		t.Fatal("closed-loop result gained load stats")
	}
}
