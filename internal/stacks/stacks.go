// Package stacks defines the common notion of a "software stack" from the
// paper's system view (§2.2): the substrate a prescribed benchmark test
// executes on. bdbench ships five stack implementations — mapreduce, dbms,
// nosql, streaming and graphengine — each in its own subpackage; this
// package holds the shared taxonomy the test generator binds against.
package stacks

// Type classifies a stack, mirroring the "software stacks" column of the
// paper's Table 2.
type Type string

// The stack types bdbench implements.
const (
	TypeMapReduce Type = "mapreduce" // Hadoop-style batch dataflow
	TypeDBMS      Type = "dbms"      // relational engine
	TypeNoSQL     Type = "nosql"     // cloud-serving key-value store
	TypeStreaming Type = "streaming" // windowed stream dataflow
	TypeGraph     Type = "graph"     // Pregel-style BSP graph engine
)

// Stack is implemented by every substrate.
type Stack interface {
	// Name returns the concrete engine name (e.g. "bdbench-mapreduce").
	Name() string
	// Type returns the stack's taxonomy class.
	Type() Type
}

// Info describes a stack for reports.
type Info struct {
	Name string
	Type Type
}

// Describe extracts report info from a stack.
func Describe(s Stack) Info { return Info{Name: s.Name(), Type: s.Type()} }
