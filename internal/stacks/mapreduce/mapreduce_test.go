package mapreduce

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/bdbench/bdbench/internal/stacks"
	"github.com/bdbench/bdbench/internal/stats"
)

func wordCountJob() Job {
	return Job{
		Name: "wordcount",
		Map: func(_, value string, emit func(k, v string)) {
			for _, w := range strings.Fields(value) {
				emit(w, "1")
			}
		},
		Reduce: func(key string, values []string, emit func(k, v string)) {
			total := 0
			for _, v := range values {
				n, _ := strconv.Atoi(v)
				total += n
			}
			emit(key, strconv.Itoa(total))
		},
	}
}

func TestWordCount(t *testing.T) {
	e := New(4)
	input := []KV{
		{"1", "the quick brown fox"},
		{"2", "the lazy dog"},
		{"3", "the quick dog"},
	}
	out, st, err := e.Run(wordCountJob(), input)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, kv := range out {
		counts[kv.Key] = kv.Value
	}
	want := map[string]string{"the": "3", "quick": "2", "dog": "2", "brown": "1", "fox": "1", "lazy": "1"}
	for k, v := range want {
		if counts[k] != v {
			t.Fatalf("count[%s] = %s, want %s (all: %v)", k, counts[k], v, counts)
		}
	}
	if st.MapInputRecords != 3 {
		t.Fatalf("map input %d", st.MapInputRecords)
	}
	if st.MapOutputRecords != 10 {
		t.Fatalf("map output %d, want 10", st.MapOutputRecords)
	}
	if st.ReduceGroups != 6 {
		t.Fatalf("groups %d, want 6", st.ReduceGroups)
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	e := New(2)
	var input []KV
	for i := 0; i < 200; i++ {
		input = append(input, KV{strconv.Itoa(i), "a a a a a b b"})
	}
	plain := wordCountJob()
	plain.NumMappers = 4
	_, stPlain, err := e.Run(plain, input)
	if err != nil {
		t.Fatal(err)
	}
	combined := wordCountJob()
	combined.NumMappers = 4
	combined.Combine = combined.Reduce
	out, stComb, err := e.Run(combined, input)
	if err != nil {
		t.Fatal(err)
	}
	if stComb.ShuffleBytes >= stPlain.ShuffleBytes {
		t.Fatalf("combiner did not reduce shuffle: %d vs %d", stComb.ShuffleBytes, stPlain.ShuffleBytes)
	}
	counts := map[string]string{}
	for _, kv := range out {
		counts[kv.Key] = kv.Value
	}
	if counts["a"] != "1000" || counts["b"] != "400" {
		t.Fatalf("combined counts wrong: %v", counts)
	}
}

func TestMapOnlyJob(t *testing.T) {
	e := New(2)
	job := Job{
		Name: "grep",
		Map: func(k, v string, emit func(k, v string)) {
			if strings.Contains(v, "match") {
				emit(k, v)
			}
		},
	}
	input := []KV{{"1", "no"}, {"2", "a match here"}, {"3", "nothing"}, {"4", "match"}}
	out, st, err := e.Run(job, input)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("map-only output %d records, want 2", len(out))
	}
	if st.OutputRecords != 2 {
		t.Fatalf("stats output %d", st.OutputRecords)
	}
}

func TestMissingMapper(t *testing.T) {
	e := New(1)
	if _, _, err := e.Run(Job{Name: "bad"}, nil); err == nil {
		t.Fatal("job without mapper accepted")
	}
}

func TestEmptyInput(t *testing.T) {
	e := New(4)
	out, st, err := e.Run(wordCountJob(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || st.MapInputRecords != 0 {
		t.Fatal("empty input should produce empty output")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	input := make([]KV, 500)
	g := stats.NewRNG(1)
	for i := range input {
		input[i] = KV{strconv.Itoa(i), g.RandomWord(3, 6) + " " + g.RandomWord(3, 6)}
	}
	norm := func(out []KV) []KV {
		s := append([]KV(nil), out...)
		sort.Slice(s, func(i, j int) bool {
			if s[i].Key != s[j].Key {
				return s[i].Key < s[j].Key
			}
			return s[i].Value < s[j].Value
		})
		return s
	}
	job := wordCountJob()
	job.NumMappers = 7
	job.NumReducers = 3
	a, _, err := New(1).Run(job, input)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := New(8).Run(job, input)
	if err != nil {
		t.Fatal(err)
	}
	na, nb := norm(a), norm(b)
	if len(na) != len(nb) {
		t.Fatalf("lengths differ: %d vs %d", len(na), len(nb))
	}
	for i := range na {
		if na[i] != nb[i] {
			t.Fatalf("record %d differs: %v vs %v", i, na[i], nb[i])
		}
	}
}

func TestSortWithRangePartitioner(t *testing.T) {
	g := stats.NewRNG(2)
	input := make([]KV, 2000)
	for i := range input {
		input[i] = KV{g.RandomWord(5, 10), "v"}
	}
	splits := SampleSplits(input, 4, 500, g)
	job := Job{
		Name:        "sort",
		Map:         func(k, v string, emit func(k, v string)) { emit(k, v) },
		Reduce:      func(k string, vs []string, emit func(k, v string)) { emit(k, strconv.Itoa(len(vs))) },
		Partition:   RangePartitioner(splits),
		NumReducers: 4,
		SortOutput:  true,
	}
	out, _, err := New(4).Run(job, input)
	if err != nil {
		t.Fatal(err)
	}
	// With a range partitioner, the concatenated partitions are globally
	// key-sorted.
	for i := 1; i < len(out); i++ {
		if out[i].Key < out[i-1].Key {
			t.Fatalf("output not globally sorted at %d: %q < %q", i, out[i].Key, out[i-1].Key)
		}
	}
}

func TestRangePartitionerBounds(t *testing.T) {
	p := RangePartitioner([]string{"h", "p"})
	if p("a", 3) != 0 {
		t.Fatal("low key should route to partition 0")
	}
	if p("m", 3) != 1 {
		t.Fatal("middle key should route to partition 1")
	}
	if p("z", 3) != 2 {
		t.Fatal("high key should route to last partition")
	}
	if p("z", 2) != 1 {
		t.Fatal("partition index must clamp to n-1")
	}
}

func TestSampleSplitsDegenerate(t *testing.T) {
	g := stats.NewRNG(3)
	if SampleSplits(nil, 4, 10, g) != nil {
		t.Fatal("empty input should give nil splits")
	}
	if SampleSplits([]KV{{"a", ""}}, 1, 10, g) != nil {
		t.Fatal("single partition should give nil splits")
	}
	splits := SampleSplits([]KV{{"a", ""}, {"b", ""}, {"c", ""}, {"d", ""}}, 2, 100, g)
	if len(splits) != 1 {
		t.Fatalf("splits %v", splits)
	}
}

func TestStackInterface(t *testing.T) {
	e := New(2)
	if e.Name() == "" || e.Type() != stacks.TypeMapReduce {
		t.Fatal("stack identity wrong")
	}
	if e.Workers() != 2 {
		t.Fatal("workers accessor wrong")
	}
	info := stacks.Describe(e)
	if info.Type != stacks.TypeMapReduce {
		t.Fatal("Describe wrong")
	}
}

func TestWorkerClamp(t *testing.T) {
	if New(0).Workers() != 1 {
		t.Fatal("workers should clamp to 1")
	}
}

func TestIterativeChaining(t *testing.T) {
	// Two chained jobs: first counts words, second buckets counts — the
	// multi-operation pattern workloads use.
	e := New(4)
	input := []KV{{"1", "x x x y y z"}}
	first, _, err := e.Run(wordCountJob(), input)
	if err != nil {
		t.Fatal(err)
	}
	second := Job{
		Name: "histogram",
		Map: func(k, v string, emit func(k, v string)) {
			emit(v, k) // count -> word
		},
		Reduce: func(count string, words []string, emit func(k, v string)) {
			emit(count, fmt.Sprintf("%d", len(words)))
		},
	}
	out, _, err := e.Run(second, first)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, kv := range out {
		got[kv.Key] = kv.Value
	}
	// one word with count 3 (x), one with 2 (y), one with 1 (z)
	if got["3"] != "1" || got["2"] != "1" || got["1"] != "1" {
		t.Fatalf("histogram wrong: %v", got)
	}
}
