package mapreduce

import (
	"strconv"
	"strings"
	"testing"

	"github.com/bdbench/bdbench/internal/metrics"
)

// TestInstrumentRecordsTaskLatencies: an instrumented engine reports one
// map_task observation per mapper and one reduce_task per reducer, recorded
// through per-task shards.
func TestInstrumentRecordsTaskLatencies(t *testing.T) {
	input := make([]KV, 100)
	for i := range input {
		input[i] = KV{Key: strconv.Itoa(i), Value: "a b c"}
	}
	c := metrics.NewCollector("mr")
	eng := New(4).Instrument(c)
	job := Job{
		Name: "wc",
		Map: func(_, v string, emit func(k, v string)) {
			for _, w := range strings.Fields(v) {
				emit(w, "1")
			}
		},
		Reduce:      func(k string, vs []string, emit func(k, v string)) { emit(k, strconv.Itoa(len(vs))) },
		NumMappers:  3,
		NumReducers: 2,
	}
	if _, _, err := eng.Run(job, input); err != nil {
		t.Fatal(err)
	}
	counts := map[string]uint64{}
	for _, op := range snapshotOps(c) {
		counts[op.Op] = op.Count
	}
	if counts["map_task"] != 3 {
		t.Fatalf("map_task observations %d, want 3", counts["map_task"])
	}
	if counts["reduce_task"] != 2 {
		t.Fatalf("reduce_task observations %d, want 2", counts["reduce_task"])
	}
}

// TestUninstrumentedEngineRecordsNothing: without Instrument the engine must
// not observe anything (and must not crash trying).
func TestUninstrumentedEngineRecordsNothing(t *testing.T) {
	input := []KV{{Key: "1", Value: "x"}}
	eng := New(2)
	if _, _, err := eng.Run(Job{Name: "id", Map: func(k, v string, emit func(k, v string)) { emit(k, v) }}, input); err != nil {
		t.Fatal(err)
	}
}

func snapshotOps(c *metrics.Collector) []metrics.OpStats {
	c.SetElapsed(1)
	return c.Snapshot().Ops
}
