// Package mapreduce is bdbench's Hadoop-substitute: an in-process MapReduce
// engine with input splits, parallel map tasks, combiners, hash or custom
// partitioning, a sort-based shuffle, and parallel reduce tasks. Workloads
// that the paper's surveyed benchmarks run on Hadoop (sort, WordCount,
// TeraSort, PageRank iterations, k-means iterations, ...) run on this engine
// through the same map/reduce contract.
package mapreduce

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/stacks"
	"github.com/bdbench/bdbench/internal/stats"
)

// KV is the engine's record type.
type KV struct {
	Key, Value string
}

// Mapper transforms one input record into zero or more intermediate records.
type Mapper func(key, value string, emit func(k, v string))

// Reducer folds all values of one key into zero or more output records.
type Reducer func(key string, values []string, emit func(k, v string))

// Partitioner routes an intermediate key to one of n reduce partitions.
type Partitioner func(key string, n int) int

// HashPartition is the default partitioner.
func HashPartition(key string, n int) int {
	return int(stats.FNV64(key) % uint64(n))
}

// Job describes one MapReduce execution.
type Job struct {
	Name string
	Map  Mapper
	// Reduce may be nil for map-only jobs.
	Reduce Reducer
	// Combine, when non-nil, pre-aggregates map output per partition
	// before the shuffle, cutting shuffle volume (it must be associative
	// and produce the same key).
	Combine Reducer
	// Partition defaults to HashPartition.
	Partition Partitioner
	// NumMappers and NumReducers default to the engine worker count.
	NumMappers  int
	NumReducers int
	// SortOutput, when true, concatenates reduce partitions in partition
	// order with each partition's groups key-sorted (needed by sort
	// workloads with range partitioners).
	SortOutput bool
}

// Stats captures the architecture metrics of one job run.
type Stats struct {
	MapInputRecords   int64
	MapOutputRecords  int64
	CombineOutRecords int64
	ShuffleBytes      int64
	ReduceGroups      int64
	OutputRecords     int64
	MapWall           time.Duration
	ShuffleWall       time.Duration
	ReduceWall        time.Duration
}

// Engine is a simulated cluster with a fixed worker pool.
type Engine struct {
	workers int
	rec     metrics.Recorder
}

// New returns an engine with the given parallelism (clamped to >= 1).
func New(workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	return &Engine{workers: workers}
}

// Instrument attaches a measurement recorder and returns the engine. Each
// run mints one substrate shard per worker slot (when rec can shard) and
// map/reduce tasks record their per-task wall times into the shard of the
// slot they run on, so task-level measurement adds no shared-lock
// contention to the job's hot path.
func (e *Engine) Instrument(rec metrics.Recorder) *Engine {
	e.rec = rec
	return e
}

// Name implements stacks.Stack.
func (e *Engine) Name() string { return "bdbench-mapreduce" }

// Type implements stacks.Stack.
func (e *Engine) Type() stacks.Type { return stacks.TypeMapReduce }

// Workers returns the configured parallelism.
func (e *Engine) Workers() int { return e.workers }

var _ stacks.Stack = (*Engine)(nil)

// Run executes the job over the input and returns the output records plus
// run statistics.
func (e *Engine) Run(job Job, input []KV) ([]KV, Stats, error) {
	if job.Map == nil {
		return nil, Stats{}, fmt.Errorf("mapreduce: job %q has no mapper", job.Name)
	}
	numMappers := job.NumMappers
	if numMappers <= 0 {
		numMappers = e.workers
	}
	if numMappers > len(input) && len(input) > 0 {
		numMappers = len(input)
	}
	if numMappers < 1 {
		numMappers = 1
	}
	numReducers := job.NumReducers
	if numReducers <= 0 {
		numReducers = e.workers
	}
	partition := job.Partition
	if partition == nil {
		partition = HashPartition
	}

	var st Stats
	st.MapInputRecords = int64(len(input))

	// One substrate shard per worker slot, shared by map and reduce phases:
	// tasks acquire a slot before running, so a shard never has two
	// concurrent writers and the shard count is bounded by the worker pool,
	// not by the task count.
	slots := make(chan int, e.workers)
	for i := 0; i < e.workers; i++ {
		slots <- i
	}
	// One private shard per worker slot, with the task-latency OpRefs
	// resolved up front: the per-task goroutines then record through
	// direct histogram handles, never a per-call label lookup
	// (bdvet:oprefed enforces this).
	var mapRefs, reduceRefs []metrics.OpRef
	if e.rec != nil {
		mapRefs = make([]metrics.OpRef, e.workers)
		reduceRefs = make([]metrics.OpRef, e.workers)
		for i := 0; i < e.workers; i++ {
			shard := metrics.SubstrateShardOf(e.rec)
			mapRefs[i] = metrics.OpRefOf(shard, "map_task")
			reduceRefs[i] = metrics.OpRefOf(shard, "reduce_task")
		}
	}

	// ---- Map phase: each mapper owns a split and emits into
	// per-partition buffers.
	mapStart := time.Now()
	mapOut := make([][][]KV, numMappers) // mapper -> partition -> records
	var mapOutCount, combineOutCount int64
	var wg sync.WaitGroup
	for m := 0; m < numMappers; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			slot := <-slots
			defer func() { slots <- slot }()
			var taskRef metrics.OpRef
			if mapRefs != nil {
				taskRef = mapRefs[slot]
			}
			taskStart := taskRef.StartTimer()
			lo := len(input) * m / numMappers
			hi := len(input) * (m + 1) / numMappers
			buckets := make([][]KV, numReducers)
			emit := func(k, v string) {
				p := partition(k, numReducers)
				buckets[p] = append(buckets[p], KV{k, v})
				atomic.AddInt64(&mapOutCount, 1)
			}
			for _, rec := range input[lo:hi] {
				job.Map(rec.Key, rec.Value, emit)
			}
			if job.Combine != nil {
				for p := range buckets {
					buckets[p] = combine(job.Combine, buckets[p])
					atomic.AddInt64(&combineOutCount, int64(len(buckets[p])))
				}
			}
			mapOut[m] = buckets
			taskRef.ObserveSince(taskStart)
		}(m)
	}
	wg.Wait()
	st.MapWall = time.Since(mapStart)
	st.MapOutputRecords = mapOutCount
	st.CombineOutRecords = combineOutCount

	// Map-only job: concatenate mapper outputs in mapper order.
	if job.Reduce == nil {
		var out []KV
		for _, buckets := range mapOut {
			for _, b := range buckets {
				out = append(out, b...)
			}
		}
		st.OutputRecords = int64(len(out))
		return out, st, nil
	}

	// ---- Shuffle phase: gather each partition from all mappers and sort
	// by key (the merge-sort the real shuffle performs).
	shuffleStart := time.Now()
	partitions := make([][]KV, numReducers)
	var shuffleBytes int64
	for p := 0; p < numReducers; p++ {
		var part []KV
		for m := 0; m < numMappers; m++ {
			part = append(part, mapOut[m][p]...)
		}
		for _, kv := range part {
			shuffleBytes += int64(len(kv.Key) + len(kv.Value))
		}
		sort.SliceStable(part, func(i, j int) bool { return part[i].Key < part[j].Key })
		partitions[p] = part
	}
	st.ShuffleBytes = shuffleBytes
	st.ShuffleWall = time.Since(shuffleStart)

	// ---- Reduce phase: group runs of equal keys and fold them.
	reduceStart := time.Now()
	reduceOut := make([][]KV, numReducers)
	var groupCount int64
	for p := 0; p < numReducers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			slot := <-slots
			defer func() { slots <- slot }()
			var taskRef metrics.OpRef
			if reduceRefs != nil {
				taskRef = reduceRefs[slot]
			}
			taskStart := taskRef.StartTimer()
			part := partitions[p]
			var out []KV
			emit := func(k, v string) { out = append(out, KV{k, v}) }
			for i := 0; i < len(part); {
				j := i
				for j < len(part) && part[j].Key == part[i].Key {
					j++
				}
				values := make([]string, 0, j-i)
				for _, kv := range part[i:j] {
					values = append(values, kv.Value)
				}
				job.Reduce(part[i].Key, values, emit)
				atomic.AddInt64(&groupCount, 1)
				i = j
			}
			reduceOut[p] = out
			taskRef.ObserveSince(taskStart)
		}(p)
	}
	wg.Wait()
	st.ReduceGroups = groupCount
	st.ReduceWall = time.Since(reduceStart)

	var out []KV
	for _, part := range reduceOut {
		out = append(out, part...)
	}
	st.OutputRecords = int64(len(out))
	return out, st, nil
}

// combine groups a single mapper's partition buffer by key and applies the
// combiner.
func combine(c Reducer, records []KV) []KV {
	if len(records) == 0 {
		return records
	}
	sort.SliceStable(records, func(i, j int) bool { return records[i].Key < records[j].Key })
	var out []KV
	emit := func(k, v string) { out = append(out, KV{k, v}) }
	for i := 0; i < len(records); {
		j := i
		for j < len(records) && records[j].Key == records[i].Key {
			j++
		}
		values := make([]string, 0, j-i)
		for _, kv := range records[i:j] {
			values = append(values, kv.Value)
		}
		c(records[i].Key, values, emit)
		i = j
	}
	return out
}

// RangePartitioner builds a partitioner from sorted split points: keys below
// splits[0] go to partition 0, etc. TeraSort-style total ordering uses it
// with sampled split points.
func RangePartitioner(splits []string) Partitioner {
	points := append([]string(nil), splits...)
	sort.Strings(points)
	return func(key string, n int) int {
		idx := sort.SearchStrings(points, key)
		if idx >= n {
			idx = n - 1
		}
		return idx
	}
}

// SampleSplits picks n-1 evenly spaced split points from a sample of the
// input keys, for use with RangePartitioner over n partitions.
func SampleSplits(input []KV, n int, sampleSize int, g *stats.RNG) []string {
	if n <= 1 || len(input) == 0 {
		return nil
	}
	if sampleSize > len(input) {
		sampleSize = len(input)
	}
	sample := make([]string, sampleSize)
	for i := 0; i < sampleSize; i++ {
		sample[i] = input[g.IntN(len(input))].Key
	}
	sort.Strings(sample)
	splits := make([]string, 0, n-1)
	for i := 1; i < n; i++ {
		splits = append(splits, sample[i*len(sample)/n])
	}
	return splits
}
