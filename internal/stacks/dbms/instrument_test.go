package dbms

import (
	"testing"

	"github.com/bdbench/bdbench/internal/data"
	"github.com/bdbench/bdbench/internal/datagen/tablegen"
	"github.com/bdbench/bdbench/internal/metrics"
)

// TestInstrumentRecordsExecutorOps: an instrumented DB mirrors loads, index
// builds and query executions into db_* latencies.
func TestInstrumentRecordsExecutorOps(t *testing.T) {
	c := metrics.NewCollector("db")
	db := Open().Instrument(c)
	if err := db.Load(tablegen.ReferenceTable(1, 500)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("orders", "order_id"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Execute(Query{
			From:  "orders",
			Where: []Pred{{Col: "order_id", Op: OpEq, Val: data.Int(int64(i + 1))}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.SetElapsed(1)
	counts := map[string]uint64{}
	for _, op := range c.Snapshot().Ops {
		counts[op.Op] = op.Count
	}
	if counts["db_load"] != 1 {
		t.Fatalf("db_load %d, want 1", counts["db_load"])
	}
	if counts["db_index"] != 1 {
		t.Fatalf("db_index %d, want 1", counts["db_index"])
	}
	if counts["db_execute"] != 3 {
		t.Fatalf("db_execute %d, want 3", counts["db_execute"])
	}
}
