package dbms

import (
	"fmt"
	"sort"

	"github.com/bdbench/bdbench/internal/data"
	"github.com/bdbench/bdbench/internal/metrics"
)

// CmpOp is a comparison operator in a predicate.
type CmpOp string

// The supported comparison operators.
const (
	OpEq CmpOp = "="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Pred is one predicate: column OP literal. Predicates in a Where list are
// AND-ed.
type Pred struct {
	Col string
	Op  CmpOp
	Val data.Value
}

// Agg is one aggregate expression.
type Agg struct {
	Fn  string // count, sum, avg, min, max
	Col string // "" or "*" for count(*)
	As  string // output column name; defaults to fn(col)
}

func (a Agg) name() string {
	if a.As != "" {
		return a.As
	}
	col := a.Col
	if col == "" {
		col = "*"
	}
	return a.Fn + "(" + col + ")"
}

// Order is one sort key.
type Order struct {
	Col  string
	Desc bool
}

// JoinSpec is an equi-join with another table.
type JoinSpec struct {
	Table    string
	LeftCol  string
	RightCol string
}

// Query is a logical query plan. The executor applies: scan → (index
// lookup) → join → filter → group/aggregate → project → order → limit.
type Query struct {
	From    string
	Join    *JoinSpec
	Where   []Pred
	Select  []string // empty selects all columns (ignored when Aggs set)
	GroupBy []string
	Aggs    []Agg
	OrderBy []Order
	Limit   int
}

// Execute runs a query and returns a result table.
func (db *DB) Execute(q Query) (*data.Table, error) {
	t0 := metrics.StartTimer(db.rec)
	defer metrics.ObserveSince(db.rec, "db_execute", t0)
	if len(q.GroupBy) > 0 && len(q.Aggs) == 0 {
		return nil, fmt.Errorf("dbms: GROUP BY requires at least one aggregate in this SQL subset")
	}
	left, err := db.table(q.From)
	if err != nil {
		return nil, err
	}
	left.mu.RLock()
	schema := left.schema
	rows, usedPreds, err := scanWithIndex(left, q)
	if err != nil {
		left.mu.RUnlock()
		return nil, err
	}
	// Copy out so locks release before the pipeline continues.
	working := make([]data.Row, len(rows))
	copy(working, rows)
	left.mu.RUnlock()

	remaining := diffPreds(q.Where, usedPreds)

	if q.Join != nil {
		right, err := db.table(q.Join.Table)
		if err != nil {
			return nil, err
		}
		right.mu.RLock()
		joinedSchema, joined, err := hashJoin(schema, working, right.schema, right.rows, *q.Join)
		right.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		schema, working = joinedSchema, joined
	}

	if len(remaining) > 0 {
		match, err := compilePreds(schema, remaining)
		if err != nil {
			return nil, err
		}
		filtered := working[:0]
		for _, row := range working {
			if match(row) {
				filtered = append(filtered, row)
			}
		}
		working = filtered
	}

	if len(q.Aggs) > 0 {
		schema, working, err = aggregate(schema, working, q.GroupBy, q.Aggs)
		if err != nil {
			return nil, err
		}
	} else if len(q.Select) > 0 {
		schema, working, err = project(schema, working, q.Select)
		if err != nil {
			return nil, err
		}
	}

	if len(q.OrderBy) > 0 {
		if err := orderBy(schema, working, q.OrderBy); err != nil {
			return nil, err
		}
	}

	if q.Limit > 0 && len(working) > q.Limit {
		working = working[:q.Limit]
	}

	out := data.NewTable(schema)
	out.Rows = working
	return out, nil
}

// scanWithIndex returns candidate rows, using a hash index when an equality
// predicate hits one; it reports which predicates the index consumed.
// Caller holds the table read lock.
func scanWithIndex(t *table, q Query) ([]data.Row, []Pred, error) {
	for _, p := range q.Where {
		if p.Op != OpEq {
			continue
		}
		idx, ok := t.indexes[p.Col]
		if !ok {
			continue
		}
		ids := idx[valueKey(p.Val)]
		rows := make([]data.Row, 0, len(ids))
		for _, id := range ids {
			rows = append(rows, t.rows[id])
		}
		return rows, []Pred{p}, nil
	}
	return t.rows, nil, nil
}

func diffPreds(all, used []Pred) []Pred {
	if len(used) == 0 {
		return all
	}
	var out []Pred
	for _, p := range all {
		skip := false
		for _, u := range used {
			if p == u {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, p)
		}
	}
	return out
}

// compilePreds resolves column names once and returns a row matcher. Null
// values never match any comparison (SQL three-valued logic collapsed to
// false).
func compilePreds(schema data.Schema, preds []Pred) (func(data.Row) bool, error) {
	type compiled struct {
		idx int
		op  CmpOp
		val data.Value
	}
	cs := make([]compiled, len(preds))
	for i, p := range preds {
		ci := schema.ColIndex(p.Col)
		if ci < 0 {
			return nil, fmt.Errorf("dbms: no column %q", p.Col)
		}
		cs[i] = compiled{idx: ci, op: p.Op, val: p.Val}
	}
	return func(row data.Row) bool {
		for _, c := range cs {
			v := row[c.idx]
			if v.IsNull() {
				return false
			}
			cmp := data.Compare(v, c.val)
			ok := false
			switch c.op {
			case OpEq:
				ok = cmp == 0
			case OpNe:
				ok = cmp != 0
			case OpLt:
				ok = cmp < 0
			case OpLe:
				ok = cmp <= 0
			case OpGt:
				ok = cmp > 0
			case OpGe:
				ok = cmp >= 0
			}
			if !ok {
				return false
			}
		}
		return true
	}, nil
}

// hashJoin builds a hash table on the right input and probes with the left.
// Output columns: left columns first, then right columns; name collisions
// on the right are prefixed with "table.".
func hashJoin(ls data.Schema, lrows []data.Row, rs data.Schema, rrows []data.Row, spec JoinSpec) (data.Schema, []data.Row, error) {
	li := ls.ColIndex(spec.LeftCol)
	if li < 0 {
		return data.Schema{}, nil, fmt.Errorf("dbms: join: no column %q in %q", spec.LeftCol, ls.Name)
	}
	ri := rs.ColIndex(spec.RightCol)
	if ri < 0 {
		return data.Schema{}, nil, fmt.Errorf("dbms: join: no column %q in %q", spec.RightCol, rs.Name)
	}
	out := data.Schema{Name: ls.Name + "_" + rs.Name}
	out.Cols = append(out.Cols, ls.Cols...)
	taken := make(map[string]bool, len(ls.Cols))
	for _, c := range ls.Cols {
		taken[c.Name] = true
	}
	for _, c := range rs.Cols {
		name := c.Name
		if taken[name] {
			name = rs.Name + "." + name
		}
		out.Cols = append(out.Cols, data.Column{Name: name, Kind: c.Kind})
	}
	build := make(map[string][]int, len(rrows))
	for i, row := range rrows {
		if row[ri].IsNull() {
			continue
		}
		k := valueKey(row[ri])
		build[k] = append(build[k], i)
	}
	var joined []data.Row
	for _, lrow := range lrows {
		if lrow[li].IsNull() {
			continue
		}
		for _, rid := range build[valueKey(lrow[li])] {
			row := make(data.Row, 0, len(out.Cols))
			row = append(row, lrow...)
			row = append(row, rrows[rid]...)
			joined = append(joined, row)
		}
	}
	return out, joined, nil
}

func project(schema data.Schema, rows []data.Row, cols []string) (data.Schema, []data.Row, error) {
	idxs := make([]int, len(cols))
	out := data.Schema{Name: schema.Name}
	for i, c := range cols {
		ci := schema.ColIndex(c)
		if ci < 0 {
			return data.Schema{}, nil, fmt.Errorf("dbms: no column %q", c)
		}
		idxs[i] = ci
		out.Cols = append(out.Cols, schema.Cols[ci])
	}
	projected := make([]data.Row, len(rows))
	for ri, row := range rows {
		p := make(data.Row, len(idxs))
		for i, ci := range idxs {
			p[i] = row[ci]
		}
		projected[ri] = p
	}
	return out, projected, nil
}

type aggState struct {
	count int64
	sum   float64
	min   data.Value
	max   data.Value
	seen  bool
}

func aggregate(schema data.Schema, rows []data.Row, groupBy []string, aggs []Agg) (data.Schema, []data.Row, error) {
	groupIdx := make([]int, len(groupBy))
	for i, c := range groupBy {
		ci := schema.ColIndex(c)
		if ci < 0 {
			return data.Schema{}, nil, fmt.Errorf("dbms: group by: no column %q", c)
		}
		groupIdx[i] = ci
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		switch a.Fn {
		case "count":
			aggIdx[i] = -1
			if a.Col != "" && a.Col != "*" {
				ci := schema.ColIndex(a.Col)
				if ci < 0 {
					return data.Schema{}, nil, fmt.Errorf("dbms: count: no column %q", a.Col)
				}
				aggIdx[i] = ci
			}
		case "sum", "avg", "min", "max":
			ci := schema.ColIndex(a.Col)
			if ci < 0 {
				return data.Schema{}, nil, fmt.Errorf("dbms: %s: no column %q", a.Fn, a.Col)
			}
			aggIdx[i] = ci
		default:
			return data.Schema{}, nil, fmt.Errorf("dbms: unknown aggregate %q", a.Fn)
		}
	}

	type group struct {
		key    []data.Value
		states []aggState
	}
	groups := make(map[string]*group)
	var order []string // deterministic first-seen group order
	for _, row := range rows {
		keyVals := make([]data.Value, len(groupIdx))
		keyStr := ""
		for i, gi := range groupIdx {
			keyVals[i] = row[gi]
			keyStr += valueKey(row[gi]) + "\x1f"
		}
		grp, ok := groups[keyStr]
		if !ok {
			grp = &group{key: keyVals, states: make([]aggState, len(aggs))}
			groups[keyStr] = grp
			order = append(order, keyStr)
		}
		for i, a := range aggs {
			st := &grp.states[i]
			switch a.Fn {
			case "count":
				if aggIdx[i] < 0 || !row[aggIdx[i]].IsNull() {
					st.count++
				}
			default:
				v := row[aggIdx[i]]
				if v.IsNull() {
					continue
				}
				st.count++
				st.sum += v.Float()
				if !st.seen || data.Compare(v, st.min) < 0 {
					st.min = v
				}
				if !st.seen || data.Compare(v, st.max) > 0 {
					st.max = v
				}
				st.seen = true
			}
		}
	}
	// Global aggregate over empty input still yields one row.
	if len(groupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{states: make([]aggState, len(aggs))}
		order = append(order, "")
	}

	out := data.Schema{Name: schema.Name + "_agg"}
	for i, c := range groupBy {
		out.Cols = append(out.Cols, data.Column{Name: c, Kind: schema.Cols[groupIdx[i]].Kind})
	}
	for i, a := range aggs {
		kind := data.KindFloat
		if a.Fn == "count" {
			kind = data.KindInt
		}
		if a.Fn == "min" || a.Fn == "max" {
			kind = schema.Cols[aggIdx[i]].Kind
		}
		out.Cols = append(out.Cols, data.Column{Name: a.name(), Kind: kind})
	}
	result := make([]data.Row, 0, len(groups))
	for _, keyStr := range order {
		grp := groups[keyStr]
		row := make(data.Row, 0, len(out.Cols))
		row = append(row, grp.key...)
		for i, a := range aggs {
			st := grp.states[i]
			switch a.Fn {
			case "count":
				row = append(row, data.Int(st.count))
			case "sum":
				row = append(row, data.Float(st.sum))
			case "avg":
				if st.count == 0 {
					row = append(row, data.Null())
				} else {
					row = append(row, data.Float(st.sum/float64(st.count)))
				}
			case "min":
				if !st.seen {
					row = append(row, data.Null())
				} else {
					row = append(row, st.min)
				}
			case "max":
				if !st.seen {
					row = append(row, data.Null())
				} else {
					row = append(row, st.max)
				}
			}
		}
		result = append(result, row)
	}
	return out, result, nil
}

func orderBy(schema data.Schema, rows []data.Row, keys []Order) error {
	idxs := make([]int, len(keys))
	for i, k := range keys {
		ci := schema.ColIndex(k.Col)
		if ci < 0 {
			return fmt.Errorf("dbms: order by: no column %q", k.Col)
		}
		idxs[i] = ci
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for i, k := range keys {
			cmp := data.Compare(rows[a][idxs[i]], rows[b][idxs[i]])
			if cmp == 0 {
				continue
			}
			if k.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	return nil
}
