package dbms

import (
	"testing"

	"github.com/bdbench/bdbench/internal/data"
	"github.com/bdbench/bdbench/internal/stacks"
)

func usersSchema() data.Schema {
	return data.Schema{Name: "users", Cols: []data.Column{
		{Name: "id", Kind: data.KindInt},
		{Name: "name", Kind: data.KindString},
		{Name: "age", Kind: data.KindInt},
		{Name: "score", Kind: data.KindFloat},
	}}
}

func loadUsers(t *testing.T) *DB {
	t.Helper()
	db := Open()
	if err := db.CreateTable(usersSchema()); err != nil {
		t.Fatal(err)
	}
	rows := []data.Row{
		{data.Int(1), data.String_("ann"), data.Int(30), data.Float(8.5)},
		{data.Int(2), data.String_("bob"), data.Int(25), data.Float(6.0)},
		{data.Int(3), data.String_("cid"), data.Int(30), data.Float(9.0)},
		{data.Int(4), data.String_("dee"), data.Int(41), data.Float(5.5)},
		{data.Int(5), data.String_("eva"), data.Int(25), data.Null()},
	}
	if err := db.Insert("users", rows...); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateDropErrors(t *testing.T) {
	db := Open()
	if err := db.CreateTable(data.Schema{}); err == nil {
		t.Fatal("empty schema accepted")
	}
	if err := db.CreateTable(data.Schema{Name: "x"}); err == nil {
		t.Fatal("no columns accepted")
	}
	s := usersSchema()
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(s); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if err := db.DropTable("users"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("users"); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestInsertValidation(t *testing.T) {
	db := loadUsers(t)
	if err := db.Insert("users", data.Row{data.Int(9)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := db.Insert("missing", data.Row{}); err == nil {
		t.Fatal("missing table accepted")
	}
	n, err := db.NumRows("users")
	if err != nil || n != 5 {
		t.Fatalf("rows %d err %v", n, err)
	}
}

func TestSelectWhere(t *testing.T) {
	db := loadUsers(t)
	out, err := db.Query("SELECT name FROM users WHERE age = 30 ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || out.Rows[0][0].Str() != "ann" || out.Rows[1][0].Str() != "cid" {
		t.Fatalf("result %v", out.Rows)
	}
}

func TestSelectStar(t *testing.T) {
	db := loadUsers(t)
	out, err := db.Query("SELECT * FROM users WHERE id <= 2 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || len(out.Schema.Cols) != 4 {
		t.Fatalf("result %+v", out)
	}
}

func TestComparisonOperators(t *testing.T) {
	db := loadUsers(t)
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT id FROM users WHERE age != 30", 3},
		{"SELECT id FROM users WHERE age < 30", 2},
		{"SELECT id FROM users WHERE age <= 30", 4},
		{"SELECT id FROM users WHERE age > 30", 1},
		{"SELECT id FROM users WHERE age >= 30", 3},
		{"SELECT id FROM users WHERE name = 'bob'", 1},
		{"SELECT id FROM users WHERE age = 30 AND score > 8.7", 1},
	}
	for _, c := range cases {
		out, err := db.Query(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if out.NumRows() != c.want {
			t.Fatalf("%s: rows %d, want %d", c.sql, out.NumRows(), c.want)
		}
	}
}

func TestNullNeverMatches(t *testing.T) {
	db := loadUsers(t)
	// eva has NULL score; no comparison should match it.
	out, err := db.Query("SELECT id FROM users WHERE score >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 4 {
		t.Fatalf("null row matched: %d rows", out.NumRows())
	}
}

func TestAggregates(t *testing.T) {
	db := loadUsers(t)
	out, err := db.Query("SELECT count(*), sum(age), avg(age), min(age), max(age) FROM users")
	if err != nil {
		t.Fatal(err)
	}
	row := out.Rows[0]
	if row[0].Int() != 5 {
		t.Fatalf("count %v", row[0])
	}
	if row[1].Float() != 151 {
		t.Fatalf("sum %v", row[1])
	}
	if row[2].Float() != 30.2 {
		t.Fatalf("avg %v", row[2])
	}
	if row[3].Int() != 25 || row[4].Int() != 41 {
		t.Fatalf("min/max %v %v", row[3], row[4])
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	db := loadUsers(t)
	out, err := db.Query("SELECT count(score) FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0].Int() != 4 {
		t.Fatalf("count(score) = %v, want 4 (nulls skipped)", out.Rows[0][0])
	}
}

func TestGroupBy(t *testing.T) {
	db := loadUsers(t)
	out, err := db.Query("SELECT age, count(*) AS n FROM users GROUP BY age ORDER BY age")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("groups %d, want 3", out.NumRows())
	}
	if out.Rows[0][0].Int() != 25 || out.Rows[0][1].Int() != 2 {
		t.Fatalf("first group %v", out.Rows[0])
	}
	if out.Schema.Cols[1].Name != "n" {
		t.Fatalf("alias not applied: %v", out.Schema.Cols)
	}
}

func TestGlobalAggregateOnEmptyTable(t *testing.T) {
	db := Open()
	if err := db.CreateTable(usersSchema()); err != nil {
		t.Fatal(err)
	}
	out, err := db.Query("SELECT count(*) FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Rows[0][0].Int() != 0 {
		t.Fatalf("empty count %+v", out.Rows)
	}
	out, err = db.Query("SELECT avg(age) FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rows[0][0].IsNull() {
		t.Fatal("avg of empty should be NULL")
	}
}

func TestJoin(t *testing.T) {
	db := loadUsers(t)
	orders := data.Schema{Name: "orders", Cols: []data.Column{
		{Name: "oid", Kind: data.KindInt},
		{Name: "user_id", Kind: data.KindInt},
		{Name: "total", Kind: data.KindFloat},
	}}
	if err := db.CreateTable(orders); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("orders",
		data.Row{data.Int(100), data.Int(1), data.Float(10)},
		data.Row{data.Int(101), data.Int(1), data.Float(20)},
		data.Row{data.Int(102), data.Int(3), data.Float(30)},
		data.Row{data.Int(103), data.Int(99), data.Float(40)}, // dangling FK
	); err != nil {
		t.Fatal(err)
	}
	out, err := db.Query("SELECT name, total FROM users JOIN orders ON id = user_id ORDER BY total")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("join rows %d, want 3", out.NumRows())
	}
	if out.Rows[0][0].Str() != "ann" || out.Rows[2][0].Str() != "cid" {
		t.Fatalf("join result %v", out.Rows)
	}
	// Aggregate over join.
	out, err = db.Query("SELECT name, sum(total) AS spent FROM users JOIN orders ON id = user_id GROUP BY name ORDER BY spent DESC")
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0].Str() != "ann" || out.Rows[0][1].Float() != 30 {
		t.Fatalf("agg join %v", out.Rows)
	}
}

func TestJoinColumnCollision(t *testing.T) {
	db := loadUsers(t)
	other := data.Schema{Name: "extra", Cols: []data.Column{
		{Name: "id", Kind: data.KindInt},
		{Name: "tag", Kind: data.KindString},
	}}
	if err := db.CreateTable(other); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("extra", data.Row{data.Int(1), data.String_("vip")}); err != nil {
		t.Fatal(err)
	}
	out, err := db.Query("SELECT name, tag FROM users JOIN extra ON id = id")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Rows[0][1].Str() != "vip" {
		t.Fatalf("collision join %v", out.Rows)
	}
	// The right-side id must be reachable under the prefixed name.
	full, err := db.Query("SELECT extra.id FROM users JOIN extra ON id = id")
	if err != nil {
		t.Fatal(err)
	}
	if full.Rows[0][0].Int() != 1 {
		t.Fatalf("prefixed column %v", full.Rows)
	}
}

func TestOrderByMultipleKeysAndLimit(t *testing.T) {
	db := loadUsers(t)
	out, err := db.Query("SELECT id, age FROM users ORDER BY age ASC, id DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("limit ignored: %d", out.NumRows())
	}
	// age 25 first, higher id first within the tie: 5 then 2.
	if out.Rows[0][0].Int() != 5 || out.Rows[1][0].Int() != 2 {
		t.Fatalf("order %v", out.Rows)
	}
}

func TestIndexEqualityLookup(t *testing.T) {
	db := loadUsers(t)
	if err := db.CreateIndex("users", "name"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("users", "name"); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if err := db.CreateIndex("users", "zzz"); err == nil {
		t.Fatal("index on missing column accepted")
	}
	out, err := db.Query("SELECT id FROM users WHERE name = 'cid'")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Rows[0][0].Int() != 3 {
		t.Fatalf("indexed lookup %v", out.Rows)
	}
	// Index stays correct across inserts.
	if err := db.Insert("users", data.Row{data.Int(6), data.String_("cid"), data.Int(50), data.Float(1)}); err != nil {
		t.Fatal(err)
	}
	out, err = db.Query("SELECT id FROM users WHERE name = 'cid' ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || out.Rows[1][0].Int() != 6 {
		t.Fatalf("index after insert %v", out.Rows)
	}
}

func TestUpdateWhere(t *testing.T) {
	db := loadUsers(t)
	if err := db.CreateIndex("users", "name"); err != nil {
		t.Fatal(err)
	}
	// Snapshot a query result, then update; the snapshot must not change.
	before, err := db.Query("SELECT age FROM users WHERE name = 'ann'")
	if err != nil {
		t.Fatal(err)
	}
	n, err := db.UpdateWhere("users", []Pred{{Col: "name", Op: OpEq, Val: data.String_("ann")}},
		map[string]data.Value{"age": data.Int(31)})
	if err != nil || n != 1 {
		t.Fatalf("update n=%d err=%v", n, err)
	}
	if before.Rows[0][0].Int() != 30 {
		t.Fatal("update mutated a previously returned result (no copy-on-write)")
	}
	after, err := db.Query("SELECT age FROM users WHERE name = 'ann'")
	if err != nil {
		t.Fatal(err)
	}
	if after.Rows[0][0].Int() != 31 {
		t.Fatalf("update not visible: %v", after.Rows)
	}
	// Kind mismatch and bad column rejected.
	if _, err := db.UpdateWhere("users", nil, map[string]data.Value{"age": data.String_("x")}); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if _, err := db.UpdateWhere("users", nil, map[string]data.Value{"zz": data.Int(1)}); err == nil {
		t.Fatal("bad column accepted")
	}
}

func TestUpdateMaintainsIndex(t *testing.T) {
	db := loadUsers(t)
	if err := db.CreateIndex("users", "name"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.UpdateWhere("users",
		[]Pred{{Col: "id", Op: OpEq, Val: data.Int(2)}},
		map[string]data.Value{"name": data.String_("bobby")}); err != nil {
		t.Fatal(err)
	}
	out, err := db.Query("SELECT id FROM users WHERE name = 'bobby'")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Rows[0][0].Int() != 2 {
		t.Fatalf("index lookup after update %v", out.Rows)
	}
	out, err = db.Query("SELECT id FROM users WHERE name = 'bob'")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 {
		t.Fatal("stale index entry remained")
	}
}

func TestDeleteWhere(t *testing.T) {
	db := loadUsers(t)
	if err := db.CreateIndex("users", "name"); err != nil {
		t.Fatal(err)
	}
	n, err := db.DeleteWhere("users", []Pred{{Col: "age", Op: OpEq, Val: data.Int(25)}})
	if err != nil || n != 2 {
		t.Fatalf("delete n=%d err=%v", n, err)
	}
	rows, _ := db.NumRows("users")
	if rows != 3 {
		t.Fatalf("rows after delete %d", rows)
	}
	// Index rebuilt correctly.
	out, err := db.Query("SELECT id FROM users WHERE name = 'cid'")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Fatalf("post-delete index lookup %v", out.Rows)
	}
}

func TestLoadFromGeneratedTable(t *testing.T) {
	db := Open()
	src := data.NewTable(usersSchema())
	src.Rows = append(src.Rows, data.Row{data.Int(1), data.String_("x"), data.Int(1), data.Float(0)})
	if err := db.Load(src); err != nil {
		t.Fatal(err)
	}
	if err := db.Load(src); err != nil { // second load appends
		t.Fatal(err)
	}
	n, _ := db.NumRows("users")
	if n != 2 {
		t.Fatalf("rows %d", n)
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "users" {
		t.Fatalf("tables %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM users",
		"SELECT * users",
		"SELECT * FROM",
		"SELECT * FROM users WHERE",
		"SELECT * FROM users WHERE age",
		"SELECT * FROM users WHERE age = ",
		"SELECT * FROM users WHERE age ~ 3",
		"SELECT * FROM users LIMIT abc",
		"SELECT * FROM users GROUP age",
		"SELECT * FROM users ORDER age",
		"SELECT * FROM users trailing",
		"SELECT count( FROM users",
		"SELECT * FROM users JOIN x ON a b",
	}
	for _, sql := range bad {
		if _, err := ParseSQL(sql); err == nil {
			t.Fatalf("accepted bad SQL: %q", sql)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	q, err := ParseSQL("SELECT id FROM t WHERE a = 'it''s' AND b = -3 AND c = 2.5 AND d = true AND e = NULL")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Val.Str() != "it's" {
		t.Fatalf("escaped quote: %q", q.Where[0].Val.Str())
	}
	if q.Where[1].Val.Int() != -3 {
		t.Fatalf("negative int: %v", q.Where[1].Val)
	}
	if q.Where[2].Val.Float() != 2.5 {
		t.Fatalf("float: %v", q.Where[2].Val)
	}
	if !q.Where[3].Val.Bool() {
		t.Fatalf("bool: %v", q.Where[3].Val)
	}
	if !q.Where[4].Val.IsNull() {
		t.Fatalf("null: %v", q.Where[4].Val)
	}
}

func TestExecuteErrors(t *testing.T) {
	db := loadUsers(t)
	cases := []string{
		"SELECT zzz FROM users",
		"SELECT * FROM missing",
		"SELECT * FROM users WHERE zzz = 1",
		"SELECT count(zzz) FROM users",
		"SELECT sum(zzz) FROM users",
		"SELECT id FROM users GROUP BY zzz",
		"SELECT id FROM users ORDER BY zzz",
		"SELECT * FROM users JOIN missing ON id = id",
		"SELECT * FROM users JOIN users ON zzz = id",
	}
	for _, sql := range cases {
		if _, err := db.Query(sql); err == nil {
			t.Fatalf("accepted bad query: %q", sql)
		}
	}
}

func TestStackInterface(t *testing.T) {
	db := Open()
	if db.Name() == "" || db.Type() != stacks.TypeDBMS {
		t.Fatal("stack identity wrong")
	}
}
