package dbms

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/bdbench/bdbench/internal/data"
)

// ParseSQL parses a SQL subset into a Query:
//
//	SELECT (*| expr [, expr]*) FROM table
//	  [JOIN table ON col = col]
//	  [WHERE col op literal [AND ...]]
//	  [GROUP BY col [, col]*]
//	  [ORDER BY col [ASC|DESC] [, ...]]
//	  [LIMIT n]
//
// where expr is a column name or an aggregate fn(col|*) [AS name], op is one
// of = != < <= > >=, and literals are numbers, 'strings', true/false or
// NULL. Keywords are case-insensitive; identifiers are case-sensitive.
func ParseSQL(sql string) (Query, error) {
	p := &sqlParser{tokens: lexSQL(sql)}
	q, err := p.parse()
	if err != nil {
		return Query{}, fmt.Errorf("dbms: parse %q: %w", sql, err)
	}
	return q, nil
}

// Query executes a SQL string directly.
func (db *DB) Query(sql string) (*data.Table, error) {
	q, err := ParseSQL(sql)
	if err != nil {
		return nil, err
	}
	return db.Execute(q)
}

type token struct {
	kind string // ident, number, string, punct, end
	text string
}

func lexSQL(s string) []token {
	var out []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < len(s) {
				if s[j] == '\'' {
					if j+1 < len(s) && s[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(s[j])
				j++
			}
			out = append(out, token{"string", sb.String()})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9':
			j := i + 1
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.' || s[j] == 'e' || s[j] == 'E' || s[j] == '+' || s[j] == '-') {
				// Stop '-'/'+' unless right after exponent.
				if (s[j] == '+' || s[j] == '-') && !(s[j-1] == 'e' || s[j-1] == 'E') {
					break
				}
				j++
			}
			out = append(out, token{"number", s[i:j]})
			i = j
		case isIdentChar(c):
			j := i + 1
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			out = append(out, token{"ident", s[i:j]})
			i = j
		case c == '<' || c == '>' || c == '!':
			if i+1 < len(s) && s[i+1] == '=' {
				out = append(out, token{"punct", s[i : i+2]})
				i += 2
			} else {
				out = append(out, token{"punct", string(c)})
				i++
			}
		default:
			out = append(out, token{"punct", string(c)})
			i++
		}
	}
	return append(out, token{kind: "end"})
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '.'
}

type sqlParser struct {
	tokens []token
	pos    int
}

func (p *sqlParser) peek() token { return p.tokens[p.pos] }

func (p *sqlParser) next() token {
	t := p.tokens[p.pos]
	if t.kind != "end" {
		p.pos++
	}
	return t
}

func (p *sqlParser) keyword(words ...string) bool {
	t := p.peek()
	if t.kind != "ident" {
		return false
	}
	for _, w := range words {
		if strings.EqualFold(t.text, w) {
			return true
		}
	}
	return false
}

func (p *sqlParser) expectKeyword(w string) error {
	if !p.keyword(w) {
		return fmt.Errorf("expected %s, got %q", strings.ToUpper(w), p.peek().text)
	}
	p.next()
	return nil
}

func (p *sqlParser) expectPunct(s string) error {
	t := p.peek()
	if t.kind != "punct" || t.text != s {
		return fmt.Errorf("expected %q, got %q", s, t.text)
	}
	p.next()
	return nil
}

func (p *sqlParser) ident() (string, error) {
	t := p.peek()
	if t.kind != "ident" {
		return "", fmt.Errorf("expected identifier, got %q", t.text)
	}
	p.next()
	return t.text, nil
}

var aggFns = map[string]bool{"count": true, "sum": true, "avg": true, "min": true, "max": true}

func (p *sqlParser) parse() (Query, error) {
	var q Query
	if err := p.expectKeyword("select"); err != nil {
		return q, err
	}
	if p.peek().kind == "punct" && p.peek().text == "*" {
		p.next()
	} else {
		for {
			t := p.peek()
			if t.kind != "ident" {
				return q, fmt.Errorf("expected select expression, got %q", t.text)
			}
			lower := strings.ToLower(t.text)
			if aggFns[lower] && p.tokens[p.pos+1].kind == "punct" && p.tokens[p.pos+1].text == "(" {
				p.next() // fn
				p.next() // (
				agg := Agg{Fn: lower}
				if p.peek().kind == "punct" && p.peek().text == "*" {
					p.next()
					agg.Col = "*"
				} else {
					col, err := p.ident()
					if err != nil {
						return q, err
					}
					agg.Col = col
				}
				if err := p.expectPunct(")"); err != nil {
					return q, err
				}
				if p.keyword("as") {
					p.next()
					as, err := p.ident()
					if err != nil {
						return q, err
					}
					agg.As = as
				}
				q.Aggs = append(q.Aggs, agg)
			} else {
				col, err := p.ident()
				if err != nil {
					return q, err
				}
				q.Select = append(q.Select, col)
			}
			if p.peek().kind == "punct" && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return q, err
	}
	from, err := p.ident()
	if err != nil {
		return q, err
	}
	q.From = from

	if p.keyword("join") {
		p.next()
		tbl, err := p.ident()
		if err != nil {
			return q, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return q, err
		}
		left, err := p.ident()
		if err != nil {
			return q, err
		}
		if err := p.expectPunct("="); err != nil {
			return q, err
		}
		right, err := p.ident()
		if err != nil {
			return q, err
		}
		q.Join = &JoinSpec{Table: tbl, LeftCol: left, RightCol: right}
	}

	if p.keyword("where") {
		p.next()
		for {
			pred, err := p.predicate()
			if err != nil {
				return q, err
			}
			q.Where = append(q.Where, pred)
			if p.keyword("and") {
				p.next()
				continue
			}
			break
		}
	}

	if p.keyword("group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return q, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return q, err
			}
			q.GroupBy = append(q.GroupBy, col)
			if p.peek().kind == "punct" && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}

	if p.keyword("order") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return q, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return q, err
			}
			ord := Order{Col: col}
			if p.keyword("desc") {
				p.next()
				ord.Desc = true
			} else if p.keyword("asc") {
				p.next()
			}
			q.OrderBy = append(q.OrderBy, ord)
			if p.peek().kind == "punct" && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}

	if p.keyword("limit") {
		p.next()
		t := p.next()
		if t.kind != "number" {
			return q, fmt.Errorf("expected LIMIT count, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return q, fmt.Errorf("bad LIMIT %q", t.text)
		}
		q.Limit = n
	}

	if t := p.peek(); t.kind != "end" {
		return q, fmt.Errorf("unexpected trailing token %q", t.text)
	}
	if q.From == "" {
		return q, fmt.Errorf("missing FROM table")
	}
	return q, nil
}

func (p *sqlParser) predicate() (Pred, error) {
	col, err := p.ident()
	if err != nil {
		return Pred{}, err
	}
	t := p.next()
	if t.kind != "punct" {
		return Pred{}, fmt.Errorf("expected comparison operator, got %q", t.text)
	}
	var op CmpOp
	switch t.text {
	case "=", "<", "<=", ">", ">=", "!=":
		op = CmpOp(t.text)
	default:
		return Pred{}, fmt.Errorf("unknown operator %q", t.text)
	}
	val, err := p.literal()
	if err != nil {
		return Pred{}, err
	}
	return Pred{Col: col, Op: op, Val: val}, nil
}

func (p *sqlParser) literal() (data.Value, error) {
	t := p.next()
	switch t.kind {
	case "number":
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return data.Null(), fmt.Errorf("bad number %q", t.text)
			}
			return data.Float(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return data.Null(), fmt.Errorf("bad number %q", t.text)
		}
		return data.Int(n), nil
	case "string":
		return data.String_(t.text), nil
	case "ident":
		switch strings.ToLower(t.text) {
		case "true":
			return data.Bool(true), nil
		case "false":
			return data.Bool(false), nil
		case "null":
			return data.Null(), nil
		}
		return data.Null(), fmt.Errorf("expected literal, got identifier %q", t.text)
	default:
		return data.Null(), fmt.Errorf("expected literal, got %q", t.text)
	}
}
