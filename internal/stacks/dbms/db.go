// Package dbms is bdbench's relational substrate: an in-memory row store
// with typed schemas, hash indexes, a relational executor (scan, filter,
// hash join, group-by aggregation, sort, limit) and a small SQL-subset
// parser. It stands in for the DBMS side of the paper's surveyed benchmarks
// — the TPC-DS engine, the parallel DBMSs of the Pavlo comparison, and the
// MySQL tier under LinkBench.
package dbms

import (
	"fmt"
	"sort"
	"sync"

	"github.com/bdbench/bdbench/internal/data"
	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/stacks"
)

// DB is a named collection of tables. All public methods are safe for
// concurrent use; writes take a per-table exclusive lock.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
	rec    metrics.Recorder
}

type table struct {
	mu      sync.RWMutex
	schema  data.Schema
	rows    []data.Row
	indexes map[string]map[string][]int // column -> value key -> row ids
}

// Open returns an empty database.
func Open() *DB {
	return &DB{tables: make(map[string]*table)}
}

// Instrument attaches a measurement recorder and returns the database.
// Executor-level wall times ("db_execute", "db_load", "db_index") are
// recorded into a private shard minted from rec, underneath whatever the
// calling workload measures itself.
func (db *DB) Instrument(rec metrics.Recorder) *DB {
	db.rec = metrics.SubstrateShardOf(rec)
	return db
}

// Name implements stacks.Stack.
func (db *DB) Name() string { return "bdbench-dbms" }

// Type implements stacks.Stack.
func (db *DB) Type() stacks.Type { return stacks.TypeDBMS }

var _ stacks.Stack = (*DB)(nil)

// CreateTable registers an empty table with the schema.
func (db *DB) CreateTable(schema data.Schema) error {
	if schema.Name == "" {
		return fmt.Errorf("dbms: table needs a name")
	}
	if len(schema.Cols) == 0 {
		return fmt.Errorf("dbms: table %q needs columns", schema.Name)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[schema.Name]; ok {
		return fmt.Errorf("dbms: table %q already exists", schema.Name)
	}
	db.tables[schema.Name] = &table{
		schema:  schema,
		indexes: make(map[string]map[string][]int),
	}
	return nil
}

// DropTable removes a table.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("dbms: no table %q", name)
	}
	delete(db.tables, name)
	return nil
}

// Tables returns the table names in sorted order.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (db *DB) table(name string) (*table, error) {
	db.mu.RLock()
	t, ok := db.tables[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dbms: no table %q", name)
	}
	return t, nil
}

// Insert appends rows to a table, validating against the schema.
func (db *DB) Insert(name string, rows ...data.Row) error {
	t, err := db.table(name)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, row := range rows {
		if err := t.schema.Validate(row); err != nil {
			return err
		}
	}
	base := len(t.rows)
	t.rows = append(t.rows, rows...)
	for col, idx := range t.indexes {
		ci := t.schema.ColIndex(col)
		for i, row := range rows {
			key := valueKey(row[ci])
			idx[key] = append(idx[key], base+i)
		}
	}
	return nil
}

// Load creates the table if necessary and bulk-inserts the data.
func (db *DB) Load(src *data.Table) error {
	t0 := metrics.StartTimer(db.rec)
	defer metrics.ObserveSince(db.rec, "db_load", t0)
	if _, err := db.table(src.Schema.Name); err != nil {
		if err := db.CreateTable(src.Schema); err != nil {
			return err
		}
	}
	return db.Insert(src.Schema.Name, src.Rows...)
}

// CreateIndex builds a hash index on the column, used by equality
// predicates.
func (db *DB) CreateIndex(tableName, col string) error {
	t0 := metrics.StartTimer(db.rec)
	defer metrics.ObserveSince(db.rec, "db_index", t0)
	t, err := db.table(tableName)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ci := t.schema.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("dbms: no column %q in table %q", col, tableName)
	}
	if _, ok := t.indexes[col]; ok {
		return fmt.Errorf("dbms: index on %s.%s already exists", tableName, col)
	}
	idx := make(map[string][]int)
	for i, row := range t.rows {
		key := valueKey(row[ci])
		idx[key] = append(idx[key], i)
	}
	t.indexes[col] = idx
	return nil
}

// valueKey renders a value as a hashable index key with a kind tag so
// Int(1) and String("1") never collide.
func valueKey(v data.Value) string {
	return fmt.Sprintf("%d:%s", v.Kind(), v.String())
}

// NumRows returns the table's row count.
func (db *DB) NumRows(name string) (int, error) {
	t, err := db.table(name)
	if err != nil {
		return 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows), nil
}

// Schema returns the table's schema.
func (db *DB) Schema(name string) (data.Schema, error) {
	t, err := db.table(name)
	if err != nil {
		return data.Schema{}, err
	}
	return t.schema, nil
}

// UpdateWhere sets the given columns on every row matching the predicates
// and returns the number of rows changed. Indexes on changed columns are
// maintained.
func (db *DB) UpdateWhere(name string, preds []Pred, set map[string]data.Value) (int, error) {
	t, err := db.table(name)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	setIdx := make(map[int]data.Value, len(set))
	for col, v := range set {
		ci := t.schema.ColIndex(col)
		if ci < 0 {
			return 0, fmt.Errorf("dbms: no column %q in table %q", col, name)
		}
		if !v.IsNull() && v.Kind() != t.schema.Cols[ci].Kind {
			return 0, fmt.Errorf("dbms: column %q kind mismatch", col)
		}
		setIdx[ci] = v
	}
	match, err := compilePreds(t.schema, preds)
	if err != nil {
		return 0, err
	}
	changed := 0
	for ri, row := range t.rows {
		if !match(row) {
			continue
		}
		// Copy-on-write: previously returned query results may alias this
		// row's storage, so updates install a fresh row instead of
		// mutating in place.
		next := row.Clone()
		for ci, v := range setIdx {
			col := t.schema.Cols[ci].Name
			if idx, ok := t.indexes[col]; ok {
				old := valueKey(row[ci])
				idx[old] = removeRowID(idx[old], ri)
				idx[valueKey(v)] = append(idx[valueKey(v)], ri)
			}
			next[ci] = v
		}
		t.rows[ri] = next
		changed++
	}
	return changed, nil
}

// DeleteWhere removes rows matching the predicates, returning the count.
// Row ids shift, so indexes are rebuilt.
func (db *DB) DeleteWhere(name string, preds []Pred) (int, error) {
	t, err := db.table(name)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	match, err := compilePreds(t.schema, preds)
	if err != nil {
		return 0, err
	}
	kept := t.rows[:0]
	deleted := 0
	for _, row := range t.rows {
		if match(row) {
			deleted++
			continue
		}
		kept = append(kept, row)
	}
	t.rows = kept
	if deleted > 0 {
		for col := range t.indexes {
			ci := t.schema.ColIndex(col)
			idx := make(map[string][]int)
			for i, row := range t.rows {
				key := valueKey(row[ci])
				idx[key] = append(idx[key], i)
			}
			t.indexes[col] = idx
		}
	}
	return deleted, nil
}

func removeRowID(ids []int, target int) []int {
	for i, id := range ids {
		if id == target {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}
