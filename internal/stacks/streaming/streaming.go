// Package streaming is bdbench's stream-processing substrate: a
// channel-based dataflow engine with map/filter stages, tumbling and
// sliding event-time windows and bounded buffers for backpressure. It
// stands in for the real-time analytics stacks of the paper's survey and
// provides the measurement point for velocity-as-processing-speed: the
// engine reports its sustained throughput so it can be compared against a
// stream's arrival rate.
package streaming

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/bdbench/bdbench/internal/datagen/streamgen"
	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/stacks"
)

// Msg is the engine's dataflow record: keyed, valued, event-timed.
type Msg struct {
	Key   string
	Value float64
	Time  time.Duration // event time (virtual offset)
}

// FromEvent converts a generated stream event into a dataflow message with
// Value 1 (count semantics); workloads that need payload-derived values map
// afterwards.
func FromEvent(ev streamgen.Event) Msg {
	return Msg{Key: ev.Key, Value: 1, Time: ev.Offset}
}

// Stage transforms a message stream. Stages run as goroutines connected by
// bounded channels; a slow stage backpressures its upstream.
type Stage interface {
	// Run consumes in until closed, writes to out, and must close out
	// before returning.
	Run(in <-chan Msg, out chan<- Msg)
	// Name identifies the stage in reports.
	Name() string
}

// MapStage applies fn to every message.
type MapStage struct {
	Label string
	Fn    func(Msg) Msg
}

// Name implements Stage.
func (s MapStage) Name() string { return "map:" + s.Label }

// Run implements Stage.
func (s MapStage) Run(in <-chan Msg, out chan<- Msg) {
	defer close(out)
	for m := range in {
		out <- s.Fn(m)
	}
}

// FilterStage drops messages failing the predicate.
type FilterStage struct {
	Label string
	Pred  func(Msg) bool
}

// Name implements Stage.
func (s FilterStage) Name() string { return "filter:" + s.Label }

// Run implements Stage.
func (s FilterStage) Run(in <-chan Msg, out chan<- Msg) {
	defer close(out)
	for m := range in {
		if s.Pred(m) {
			out <- m
		}
	}
}

// WindowAgg selects the aggregation a window stage applies per key.
type WindowAgg int

// The supported window aggregations.
const (
	AggCount WindowAgg = iota
	AggSum
)

// TumblingWindow groups messages into fixed event-time windows and emits
// one message per (window, key) with the aggregated value when the window
// closes. Event times must be non-decreasing (bdbench's generators emit
// in order), so a message at or past a window boundary closes it.
type TumblingWindow struct {
	Size time.Duration
	Agg  WindowAgg
}

// Name implements Stage.
func (s TumblingWindow) Name() string { return "tumbling-window" }

// Run implements Stage.
func (s TumblingWindow) Run(in <-chan Msg, out chan<- Msg) {
	defer close(out)
	size := s.Size
	if size <= 0 {
		size = time.Second
	}
	var windowEnd time.Duration = -1
	acc := make(map[string]float64)
	flush := func(end time.Duration) {
		// Deterministic emission order is not guaranteed across keys;
		// downstream sinks aggregate by key, so order is immaterial.
		for k, v := range acc {
			out <- Msg{Key: k, Value: v, Time: end}
		}
		clear(acc)
	}
	for m := range in {
		if windowEnd < 0 {
			windowEnd = (m.Time/size)*size + size
		}
		for m.Time >= windowEnd {
			flush(windowEnd)
			windowEnd += size
		}
		switch s.Agg {
		case AggSum:
			acc[m.Key] += m.Value
		default:
			acc[m.Key]++
		}
	}
	if len(acc) > 0 {
		flush(windowEnd)
	}
}

// SlidingWindow emits, at every slide boundary, aggregates over the last
// Size of event time. Size must be a multiple of Slide; the window is
// maintained as Size/Slide sub-buckets.
type SlidingWindow struct {
	Size  time.Duration
	Slide time.Duration
	Agg   WindowAgg
}

// Name implements Stage.
func (s SlidingWindow) Name() string { return "sliding-window" }

// Run implements Stage.
func (s SlidingWindow) Run(in <-chan Msg, out chan<- Msg) {
	defer close(out)
	size, slide := s.Size, s.Slide
	if slide <= 0 {
		slide = time.Second
	}
	if size < slide {
		size = slide
	}
	nBuckets := int(size / slide)
	buckets := make([]map[string]float64, nBuckets)
	for i := range buckets {
		buckets[i] = make(map[string]float64)
	}
	var slideEnd time.Duration = -1
	cur := 0
	emit := func(end time.Duration) {
		totals := make(map[string]float64)
		for _, b := range buckets {
			for k, v := range b {
				totals[k] += v
			}
		}
		for k, v := range totals {
			out <- Msg{Key: k, Value: v, Time: end}
		}
	}
	advance := func(end time.Duration) {
		emit(end)
		cur = (cur + 1) % nBuckets
		clear(buckets[cur]) // evict the oldest sub-bucket
	}
	for m := range in {
		if slideEnd < 0 {
			slideEnd = (m.Time/slide)*slide + slide
		}
		for m.Time >= slideEnd {
			advance(slideEnd)
			slideEnd += slide
		}
		switch s.Agg {
		case AggSum:
			buckets[cur][m.Key] += m.Value
		default:
			buckets[cur][m.Key]++
		}
	}
	emit(slideEnd)
}

// Engine wires stages into a pipeline and runs it.
type Engine struct {
	buffer int
	rec    metrics.Recorder
}

// New returns an engine whose inter-stage channels buffer the given number
// of messages (clamped to >= 1): the backpressure knob.
func New(buffer int) *Engine {
	if buffer < 1 {
		buffer = 1
	}
	return &Engine{buffer: buffer}
}

// Instrument attaches a measurement recorder and returns the engine. Each
// pipeline stage goroutine records its wall time (source open to sink
// close, which includes backpressure stalls) into a private shard minted
// from rec, keeping measurement off the per-message hot path.
func (e *Engine) Instrument(rec metrics.Recorder) *Engine {
	e.rec = rec
	return e
}

// Name implements stacks.Stack.
func (e *Engine) Name() string { return "bdbench-streaming" }

// Type implements stacks.Stack.
func (e *Engine) Type() stacks.Type { return stacks.TypeStreaming }

var _ stacks.Stack = (*Engine)(nil)

// Result reports a pipeline run.
type Result struct {
	In        int64
	Out       []Msg
	Wall      time.Duration
	Processed int64
	// Rate is input messages per second of wall time — the processing
	// speed to compare against the arrival rate.
	Rate float64
}

// Run pushes events through the stages and collects the sink output.
func (e *Engine) Run(events []streamgen.Event, stages ...Stage) Result {
	start := time.Now()
	src := make(chan Msg, e.buffer)
	var processed int64
	go func() {
		defer close(src)
		for _, ev := range events {
			src <- FromEvent(ev)
			atomic.AddInt64(&processed, 1)
		}
	}()
	in := (<-chan Msg)(src)
	var stageWG sync.WaitGroup
	for _, st := range stages {
		out := make(chan Msg, e.buffer)
		stageWG.Add(1)
		go func(st Stage, in <-chan Msg, out chan<- Msg) {
			defer stageWG.Done()
			// Resolve the stage's latency ref once, up front: the label is
			// built per stage (not per message), and the observation below
			// goes through a direct histogram handle.
			stageRef := metrics.OpRefOf(metrics.SubstrateShardOf(e.rec), "stage:"+st.Name())
			stageStart := stageRef.StartTimer()
			st.Run(in, out)
			stageRef.ObserveSince(stageStart)
		}(st, in, out)
		in = out
	}
	var collected []Msg
	for m := range in {
		collected = append(collected, m)
	}
	// Join the stage goroutines: a stage observes its wall time after its
	// deferred close(out), so without this wait the final observation could
	// race with (or be missed by) the caller's snapshot.
	stageWG.Wait()
	wall := time.Since(start)
	r := Result{
		In:        int64(len(events)),
		Out:       collected,
		Wall:      wall,
		Processed: atomic.LoadInt64(&processed),
	}
	if wall > 0 {
		r.Rate = float64(len(events)) / wall.Seconds()
	}
	return r
}
