package streaming

import (
	"testing"
	"time"

	"github.com/bdbench/bdbench/internal/datagen/streamgen"
	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/stats"
)

// TestInstrumentRecordsStageWalls: an instrumented pipeline records one wall
// time per stage, labeled by the stage name.
func TestInstrumentRecordsStageWalls(t *testing.T) {
	gen := streamgen.Generator{EventsPerSec: 100000, KeySpace: 10}
	events := gen.Generate(stats.NewRNG(2), 2000)
	c := metrics.NewCollector("stream")
	eng := New(64).Instrument(c)
	res := eng.Run(events,
		MapStage{Label: "id", Fn: func(m Msg) Msg { return m }},
		TumblingWindow{Size: 100 * time.Millisecond},
	)
	if res.In != 2000 {
		t.Fatalf("lost events: %d", res.In)
	}
	c.SetElapsed(1)
	counts := map[string]uint64{}
	for _, op := range c.Snapshot().Ops {
		counts[op.Op] = op.Count
	}
	if counts["stage:map:id"] != 1 {
		t.Fatalf("map stage observations %d, want 1 (ops: %v)", counts["stage:map:id"], counts)
	}
	if counts["stage:tumbling-window"] != 1 {
		t.Fatalf("window stage observations %d, want 1 (ops: %v)", counts["stage:tumbling-window"], counts)
	}
}
