package streaming

import (
	"testing"
	"time"

	"github.com/bdbench/bdbench/internal/datagen/streamgen"
	"github.com/bdbench/bdbench/internal/stacks"
	"github.com/bdbench/bdbench/internal/stats"
)

func eventsAt(keys []string, times []time.Duration) []streamgen.Event {
	out := make([]streamgen.Event, len(keys))
	for i := range keys {
		out[i] = streamgen.Event{Seq: int64(i), Key: keys[i], Offset: times[i]}
	}
	return out
}

func TestMapAndFilter(t *testing.T) {
	e := New(16)
	events := eventsAt(
		[]string{"a", "b", "a", "c"},
		[]time.Duration{1, 2, 3, 4},
	)
	res := e.Run(events,
		MapStage{Label: "x10", Fn: func(m Msg) Msg { m.Value *= 10; return m }},
		FilterStage{Label: "only-a", Pred: func(m Msg) bool { return m.Key == "a" }},
	)
	if len(res.Out) != 2 {
		t.Fatalf("out %d, want 2", len(res.Out))
	}
	for _, m := range res.Out {
		if m.Key != "a" || m.Value != 10 {
			t.Fatalf("msg %+v", m)
		}
	}
	if res.In != 4 || res.Processed != 4 {
		t.Fatalf("counts %+v", res)
	}
}

func TestTumblingWindowCounts(t *testing.T) {
	e := New(16)
	// Window size 10: [0,10) has a,a,b; [10,20) has b; [20,30) has c.
	events := eventsAt(
		[]string{"a", "a", "b", "b", "c"},
		[]time.Duration{1, 5, 9, 12, 25},
	)
	res := e.Run(events, TumblingWindow{Size: 10})
	got := map[string][]float64{}
	for _, m := range res.Out {
		got[m.Key] = append(got[m.Key], m.Value)
	}
	if len(got["a"]) != 1 || got["a"][0] != 2 {
		t.Fatalf("a windows %v", got["a"])
	}
	if len(got["b"]) != 2 || got["b"][0] != 1 || got["b"][1] != 1 {
		t.Fatalf("b windows %v", got["b"])
	}
	if len(got["c"]) != 1 || got["c"][0] != 1 {
		t.Fatalf("c windows %v", got["c"])
	}
}

func TestTumblingWindowSum(t *testing.T) {
	e := New(4)
	events := eventsAt([]string{"k", "k"}, []time.Duration{1, 2})
	res := e.Run(events,
		MapStage{Label: "v5", Fn: func(m Msg) Msg { m.Value = 5; return m }},
		TumblingWindow{Size: 10, Agg: AggSum},
	)
	if len(res.Out) != 1 || res.Out[0].Value != 10 {
		t.Fatalf("sum window %v", res.Out)
	}
}

func TestTumblingWindowSkipsEmptyWindows(t *testing.T) {
	e := New(4)
	// Events in window 0 and window 5; windows 1-4 are empty and must not
	// emit.
	events := eventsAt([]string{"k", "k"}, []time.Duration{1, 51})
	res := e.Run(events, TumblingWindow{Size: 10})
	if len(res.Out) != 2 {
		t.Fatalf("out %v", res.Out)
	}
}

func TestSlidingWindowOverlap(t *testing.T) {
	e := New(16)
	// Size 20, slide 10. Events at t=5 (k) and t=15 (k).
	// Slide boundary 10: window covers (last 20) -> k:1.
	// Stream-end flush at boundary 20: window covers [0,20) -> k:2,
	// demonstrating that the t=5 event is counted by two overlapping
	// windows.
	events := eventsAt([]string{"k", "k"}, []time.Duration{5, 15})
	res := e.Run(events, SlidingWindow{Size: 20, Slide: 10})
	if len(res.Out) != 2 {
		t.Fatalf("emissions %v", res.Out)
	}
	if res.Out[0].Value != 1 || res.Out[1].Value != 2 {
		t.Fatalf("values %v", res.Out)
	}
}

func TestPipelineWithGeneratedStream(t *testing.T) {
	gen := streamgen.Generator{EventsPerSec: 10000, KeySpace: 20}
	events := gen.Generate(stats.NewRNG(1), 5000)
	e := New(256)
	res := e.Run(events, TumblingWindow{Size: 100 * time.Millisecond})
	if res.Rate <= 0 {
		t.Fatal("no rate measured")
	}
	// Total counted across windows must equal the event count.
	total := 0.0
	for _, m := range res.Out {
		total += m.Value
	}
	if int(total) != 5000 {
		t.Fatalf("window counts total %v, want 5000", total)
	}
}

func TestBackpressureSmallBuffer(t *testing.T) {
	// A buffer of 1 forces lock-step handoff but must not deadlock.
	gen := streamgen.Generator{EventsPerSec: 0, KeySpace: 5}
	events := gen.Generate(stats.NewRNG(2), 1000)
	e := New(1)
	res := e.Run(events,
		MapStage{Label: "id", Fn: func(m Msg) Msg { return m }},
		TumblingWindow{Size: time.Second},
	)
	total := 0.0
	for _, m := range res.Out {
		total += m.Value
	}
	if int(total) != 1000 {
		t.Fatalf("total %v", total)
	}
}

func TestWindowDefaults(t *testing.T) {
	e := New(0) // clamps buffer to 1
	events := eventsAt([]string{"k"}, []time.Duration{time.Millisecond})
	res := e.Run(events, TumblingWindow{}) // size defaults to 1s
	if len(res.Out) != 1 {
		t.Fatalf("out %v", res.Out)
	}
	res = e.Run(events, SlidingWindow{}) // slide defaults to 1s
	if len(res.Out) != 1 {
		t.Fatalf("sliding out %v", res.Out)
	}
}

func TestStackInterface(t *testing.T) {
	e := New(1)
	if e.Name() == "" || e.Type() != stacks.TypeStreaming {
		t.Fatal("stack identity wrong")
	}
}

func TestStageNames(t *testing.T) {
	stages := []Stage{
		MapStage{Label: "m"},
		FilterStage{Label: "f"},
		TumblingWindow{},
		SlidingWindow{},
	}
	for _, s := range stages {
		if s.Name() == "" {
			t.Fatalf("%T empty name", s)
		}
	}
}
