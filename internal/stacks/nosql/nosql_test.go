package nosql

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"github.com/bdbench/bdbench/internal/stacks"
	"github.com/bdbench/bdbench/internal/stats"
)

func TestInsertReadRoundTrip(t *testing.T) {
	s := Open(4, 1)
	s.Insert("k1", Record{"f0": "a", "f1": "b"})
	rec, err := s.Read("k1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec["f0"] != "a" || rec["f1"] != "b" {
		t.Fatalf("read %v", rec)
	}
	if _, err := s.Read("missing", nil); err != ErrNotFound {
		t.Fatalf("missing key err = %v", err)
	}
}

func TestReadProjection(t *testing.T) {
	s := Open(2, 1)
	s.Insert("k", Record{"a": "1", "b": "2", "c": "3"})
	rec, err := s.Read("k", []string{"a", "c", "zz"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 2 || rec["a"] != "1" || rec["c"] != "3" {
		t.Fatalf("projection %v", rec)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	s := Open(2, 1)
	s.Insert("k", Record{"a": "1"})
	rec, _ := s.Read("k", nil)
	rec["a"] = "mutated"
	again, _ := s.Read("k", nil)
	if again["a"] != "1" {
		t.Fatal("store aliased caller map")
	}
}

func TestInsertClonesInput(t *testing.T) {
	s := Open(2, 1)
	in := Record{"a": "1"}
	s.Insert("k", in)
	in["a"] = "mutated"
	got, _ := s.Read("k", nil)
	if got["a"] != "1" {
		t.Fatal("store aliased inserted map")
	}
}

func TestUpdateMergesFields(t *testing.T) {
	s := Open(2, 1)
	s.Insert("k", Record{"a": "1", "b": "2"})
	if err := s.Update("k", Record{"b": "20", "c": "30"}); err != nil {
		t.Fatal(err)
	}
	rec, _ := s.Read("k", nil)
	if rec["a"] != "1" || rec["b"] != "20" || rec["c"] != "30" {
		t.Fatalf("merged %v", rec)
	}
	if err := s.Update("missing", Record{"x": "y"}); err != ErrNotFound {
		t.Fatalf("update missing err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	s := Open(2, 1)
	s.Insert("k", Record{"a": "1"})
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read("k", nil); err != ErrNotFound {
		t.Fatal("deleted key still readable")
	}
	if err := s.Delete("k"); err != ErrNotFound {
		t.Fatal("double delete should fail")
	}
	if s.Size() != 0 {
		t.Fatalf("size %d after delete", s.Size())
	}
}

func TestReadModifyWrite(t *testing.T) {
	s := Open(2, 1)
	s.Insert("counter", Record{"n": "0"})
	for i := 0; i < 10; i++ {
		err := s.ReadModifyWrite("counter", func(r Record) Record {
			r["n"] = fmt.Sprintf("%d", i+1)
			return r
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	rec, _ := s.Read("counter", nil)
	if rec["n"] != "10" {
		t.Fatalf("rmw result %v", rec)
	}
	if err := s.ReadModifyWrite("missing", func(r Record) Record { return r }); err != ErrNotFound {
		t.Fatal("rmw on missing key should fail")
	}
}

func TestScanGlobalOrder(t *testing.T) {
	s := Open(8, 2) // many partitions: scan must merge correctly
	for i := 0; i < 500; i++ {
		s.Insert(fmt.Sprintf("key%04d", i), Record{"v": fmt.Sprintf("%d", i)})
	}
	got := s.Scan("key0100", 50)
	if len(got) != 50 {
		t.Fatalf("scan returned %d, want 50", len(got))
	}
	for i, kv := range got {
		want := fmt.Sprintf("key%04d", 100+i)
		if kv.Key != want {
			t.Fatalf("scan[%d] = %s, want %s", i, kv.Key, want)
		}
	}
}

func TestScanPastEnd(t *testing.T) {
	s := Open(4, 3)
	s.Insert("a", Record{"v": "1"})
	if got := s.Scan("zzz", 10); len(got) != 0 {
		t.Fatalf("scan past end returned %v", got)
	}
	if got := s.Scan("a", 0); got != nil {
		t.Fatal("zero limit should return nil")
	}
}

func TestSizeAndPartitions(t *testing.T) {
	s := Open(0, 4) // clamps to 1
	if s.Partitions() != 1 {
		t.Fatalf("partitions %d", s.Partitions())
	}
	for i := 0; i < 100; i++ {
		s.Insert(fmt.Sprintf("k%d", i), Record{"v": "x"})
	}
	if s.Size() != 100 {
		t.Fatalf("size %d", s.Size())
	}
	// Overwrites do not grow the store.
	s.Insert("k0", Record{"v": "y"})
	if s.Size() != 100 {
		t.Fatalf("size after overwrite %d", s.Size())
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	s := Open(8, 5)
	for i := 0; i < 1000; i++ {
		s.Insert(fmt.Sprintf("key%04d", i), Record{"f": "init"})
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := stats.NewRNG(uint64(w))
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("key%04d", g.IntN(1000))
				switch g.IntN(4) {
				case 0:
					if _, err := s.Read(key, nil); err != nil && err != ErrNotFound {
						errs <- err
						return
					}
				case 1:
					if err := s.Update(key, Record{"f": "upd"}); err != nil && err != ErrNotFound {
						errs <- err
						return
					}
				case 2:
					s.Scan(key, 10)
				default:
					s.Insert(key, Record{"f": "new"})
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStackInterface(t *testing.T) {
	s := Open(2, 1)
	if s.Name() == "" || s.Type() != stacks.TypeNoSQL {
		t.Fatal("stack identity wrong")
	}
}

func TestSkipListOrderInvariant(t *testing.T) {
	f := func(seed uint64, raw []uint16) bool {
		l := newSkipList(stats.NewRNG(seed))
		inserted := map[string]bool{}
		for _, r := range raw {
			key := fmt.Sprintf("k%05d", r)
			l.set(key, Record{"v": "1"})
			inserted[key] = true
		}
		want := make([]string, 0, len(inserted))
		for k := range inserted {
			want = append(want, k)
		}
		sort.Strings(want)
		var got []string
		l.scanFrom("", func(k string, _ Record) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) || l.len() != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListDeleteInvariant(t *testing.T) {
	f := func(seed uint64, keys []uint8, dels []uint8) bool {
		l := newSkipList(stats.NewRNG(seed))
		model := map[string]bool{}
		for _, k := range keys {
			key := fmt.Sprintf("k%03d", k)
			l.set(key, Record{})
			model[key] = true
		}
		for _, d := range dels {
			key := fmt.Sprintf("k%03d", d)
			got := l.del(key)
			want := model[key]
			if got != want {
				return false
			}
			delete(model, key)
		}
		if l.len() != len(model) {
			return false
		}
		for k := range model {
			if _, ok := l.get(k); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
