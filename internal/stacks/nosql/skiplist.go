package nosql

import "github.com/bdbench/bdbench/internal/stats"

// skipList is an ordered string-keyed map with probabilistic balancing —
// the memtable structure of the store. It is not safe for concurrent use;
// each partition guards its list with a mutex.
type skipList struct {
	head     *skipNode
	level    int
	length   int
	g        *stats.RNG
	maxLevel int
}

type skipNode struct {
	key  string
	val  Record
	next []*skipNode
}

const defaultMaxLevel = 24

func newSkipList(g *stats.RNG) *skipList {
	return &skipList{
		head:     &skipNode{next: make([]*skipNode, defaultMaxLevel)},
		level:    1,
		g:        g,
		maxLevel: defaultMaxLevel,
	}
}

func (s *skipList) randomLevel() int {
	lvl := 1
	for lvl < s.maxLevel && s.g.Bool(0.25) {
		lvl++
	}
	return lvl
}

// findPath fills update with the rightmost node before key at every level.
func (s *skipList) findPath(key string, update []*skipNode) *skipNode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		update[i] = x
	}
	return x.next[0]
}

// get returns the record for key, if present.
func (s *skipList) get(key string) (Record, bool) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
	}
	x = x.next[0]
	if x != nil && x.key == key {
		return x.val, true
	}
	return nil, false
}

// set inserts or replaces key's record; it reports whether the key was new.
func (s *skipList) set(key string, val Record) bool {
	update := make([]*skipNode, s.maxLevel)
	found := s.findPath(key, update)
	if found != nil && found.key == key {
		found.val = val
		return false
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	node := &skipNode{key: key, val: val, next: make([]*skipNode, lvl)}
	for i := 0; i < lvl; i++ {
		node.next[i] = update[i].next[i]
		update[i].next[i] = node
	}
	s.length++
	return true
}

// del removes key; it reports whether the key existed.
func (s *skipList) del(key string) bool {
	update := make([]*skipNode, s.maxLevel)
	found := s.findPath(key, update)
	if found == nil || found.key != key {
		return false
	}
	for i := 0; i < s.level; i++ {
		if update[i].next[i] == found {
			update[i].next[i] = found.next[i]
		}
	}
	for s.level > 1 && s.head.next[s.level-1] == nil {
		s.level--
	}
	s.length--
	return true
}

// scanFrom walks keys >= start in order, calling fn until it returns false.
func (s *skipList) scanFrom(start string, fn func(key string, val Record) bool) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < start {
			x = x.next[i]
		}
	}
	for x = x.next[0]; x != nil; x = x.next[0] {
		if !fn(x.key, x.val) {
			return
		}
	}
}

// len returns the number of keys.
func (s *skipList) len() int { return s.length }
