package nosql

import (
	"fmt"
	"sync"
	"testing"

	"github.com/bdbench/bdbench/internal/metrics"
)

// TestInstrumentRecordsStoreOps: an instrumented store mirrors every
// operation into per-partition shards under kv_* labels, exactly once per
// call, even with concurrent clients.
func TestInstrumentRecordsStoreOps(t *testing.T) {
	c := metrics.NewCollector("kv")
	store := Open(4, 1).Instrument(c)
	const clients, perClient = 4, 200
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				key := fmt.Sprintf("user%03d-%03d", cl, i)
				store.Insert(key, Record{"f": "v"})
				if _, err := store.Read(key, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	store.Scan("user", 10)
	c.SetElapsed(1)
	counts := map[string]uint64{}
	for _, op := range c.Snapshot().Ops {
		counts[op.Op] = op.Count
	}
	if counts["kv_insert"] != clients*perClient {
		t.Fatalf("kv_insert %d, want %d", counts["kv_insert"], clients*perClient)
	}
	if counts["kv_read"] != clients*perClient {
		t.Fatalf("kv_read %d, want %d", counts["kv_read"], clients*perClient)
	}
	if counts["kv_scan"] != 1 {
		t.Fatalf("kv_scan %d, want 1", counts["kv_scan"])
	}
}

// TestUninstrumentedStoreRecordsNothing keeps the default path metric-free.
func TestUninstrumentedStoreRecordsNothing(t *testing.T) {
	store := Open(2, 1)
	store.Insert("k", Record{"f": "v"})
	if _, err := store.Read("k", nil); err != nil {
		t.Fatal(err)
	}
	store.Scan("k", 5)
}
