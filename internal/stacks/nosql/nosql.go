// Package nosql is bdbench's cloud-serving store: a partitioned, ordered
// key-value store with the abstract operation set YCSB defines — read,
// insert, update (field merge), delete, scan and read-modify-write. It
// stands in for the Cassandra/HBase/PNUTS systems of the paper's survey.
//
// Keys hash onto partitions; each partition is an independent skip list
// guarded by a mutex, so concurrent clients contend per-partition as they
// would across nodes. Scans scatter to all partitions and merge, like a
// range query over region servers.
package nosql

import (
	"errors"
	"sort"
	"sync"

	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/stacks"
	"github.com/bdbench/bdbench/internal/stats"
)

// Record is a field-name -> value document, YCSB's record model.
type Record map[string]string

// clone returns a deep copy; the store never aliases caller maps.
func (r Record) clone() Record {
	out := make(Record, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// ErrNotFound is returned for reads/updates/deletes of absent keys.
var ErrNotFound = errors.New("nosql: key not found")

// Store is the partitioned KV store.
type Store struct {
	parts   []*partition
	scanRec metrics.Recorder
}

type partition struct {
	mu   sync.RWMutex
	list *skipList
	rec  metrics.Recorder
}

// Open creates a store with the given partition count (clamped to >= 1).
// The seed drives the skip lists' balancing coins only; it never affects
// contents.
func Open(partitions int, seed uint64) *Store {
	if partitions < 1 {
		partitions = 1
	}
	s := &Store{parts: make([]*partition, partitions)}
	base := stats.NewRNG(seed)
	for i := range s.parts {
		s.parts[i] = &partition{list: newSkipList(base.Split("partition", i))}
	}
	return s
}

// Name implements stacks.Stack.
func (s *Store) Name() string { return "bdbench-nosql" }

// Type implements stacks.Stack.
func (s *Store) Type() stacks.Type { return stacks.TypeNoSQL }

var _ stacks.Stack = (*Store)(nil)

// Instrument attaches a measurement recorder and returns the store. Each
// partition mints a private shard from rec and records its store-level
// operation latencies ("kv_read", "kv_insert", ...) there, mirroring the
// store's own contention domains: clients hitting different partitions
// never share a measurement cell either.
func (s *Store) Instrument(rec metrics.Recorder) *Store {
	for _, p := range s.parts {
		p.rec = metrics.SubstrateShardOf(rec)
	}
	s.scanRec = metrics.SubstrateShardOf(rec)
	return s
}

func (s *Store) part(key string) *partition {
	return s.parts[stats.FNV64(key)%uint64(len(s.parts))]
}

// Insert stores a full record under key, replacing any existing record.
func (s *Store) Insert(key string, rec Record) {
	p := s.part(key)
	t0 := metrics.StartTimer(p.rec)
	p.mu.Lock()
	p.list.set(key, rec.clone())
	p.mu.Unlock()
	metrics.ObserveSince(p.rec, "kv_insert", t0)
}

// Read returns the record's requested fields (all when fields is nil).
func (s *Store) Read(key string, fields []string) (Record, error) {
	p := s.part(key)
	t0 := metrics.StartTimer(p.rec)
	p.mu.RLock()
	rec, ok := p.list.get(key)
	if !ok {
		p.mu.RUnlock()
		metrics.ObserveSince(p.rec, "kv_read", t0)
		return nil, ErrNotFound
	}
	out := projectFields(rec, fields)
	p.mu.RUnlock()
	metrics.ObserveSince(p.rec, "kv_read", t0)
	return out, nil
}

func projectFields(rec Record, fields []string) Record {
	if fields == nil {
		return rec.clone()
	}
	out := make(Record, len(fields))
	for _, f := range fields {
		if v, ok := rec[f]; ok {
			out[f] = v
		}
	}
	return out
}

// Update merges the given fields into an existing record.
func (s *Store) Update(key string, fields Record) error {
	p := s.part(key)
	t0 := metrics.StartTimer(p.rec)
	defer metrics.ObserveSince(p.rec, "kv_update", t0)
	p.mu.Lock()
	defer p.mu.Unlock()
	rec, ok := p.list.get(key)
	if !ok {
		return ErrNotFound
	}
	merged := rec.clone()
	for k, v := range fields {
		merged[k] = v
	}
	p.list.set(key, merged)
	return nil
}

// Delete removes a key.
func (s *Store) Delete(key string) error {
	p := s.part(key)
	t0 := metrics.StartTimer(p.rec)
	defer metrics.ObserveSince(p.rec, "kv_delete", t0)
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.list.del(key) {
		return ErrNotFound
	}
	return nil
}

// ReadModifyWrite reads the record, applies fn to a copy and writes the
// result back atomically with respect to the key's partition.
func (s *Store) ReadModifyWrite(key string, fn func(Record) Record) error {
	p := s.part(key)
	t0 := metrics.StartTimer(p.rec)
	defer metrics.ObserveSince(p.rec, "kv_rmw", t0)
	p.mu.Lock()
	defer p.mu.Unlock()
	rec, ok := p.list.get(key)
	if !ok {
		return ErrNotFound
	}
	p.list.set(key, fn(rec.clone()).clone())
	return nil
}

// KV is a scan result element.
type KV struct {
	Key string
	Rec Record
}

// Scan returns up to limit records with keys >= start, in global key order,
// by scatter-gathering the per-partition ordered lists.
func (s *Store) Scan(start string, limit int) []KV {
	if limit <= 0 {
		return nil
	}
	t0 := metrics.StartTimer(s.scanRec)
	defer metrics.ObserveSince(s.scanRec, "kv_scan", t0)
	var all []KV
	for _, p := range s.parts {
		p.mu.RLock()
		taken := 0
		p.list.scanFrom(start, func(key string, rec Record) bool {
			all = append(all, KV{Key: key, Rec: rec.clone()})
			taken++
			return taken < limit // each partition contributes at most limit
		})
		p.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	if len(all) > limit {
		all = all[:limit]
	}
	return all
}

// Size returns the total number of records.
func (s *Store) Size() int {
	total := 0
	for _, p := range s.parts {
		p.mu.RLock()
		total += p.list.len()
		p.mu.RUnlock()
	}
	return total
}

// Partitions returns the partition count.
func (s *Store) Partitions() int { return len(s.parts) }
