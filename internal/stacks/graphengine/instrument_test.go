package graphengine

import (
	"testing"

	"github.com/bdbench/bdbench/internal/datagen/graphgen"
	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/stats"
)

// TestInstrumentRecordsSupersteps: an instrumented engine observes one
// "superstep" latency per executed superstep and workers*supersteps
// per-worker "compute" latencies.
func TestInstrumentRecordsSupersteps(t *testing.T) {
	g := graphgen.DefaultRMAT.Generate(stats.NewRNG(3), 8)
	c := metrics.NewCollector("bsp")
	eng := New(2).Instrument(c)
	const steps = 5
	res, err := eng.Run(g, PageRank{}, steps)
	if err != nil {
		t.Fatal(err)
	}
	c.SetElapsed(1)
	counts := map[string]uint64{}
	for _, op := range c.Snapshot().Ops {
		counts[op.Op] = op.Count
	}
	if counts["superstep"] != uint64(res.Supersteps) {
		t.Fatalf("superstep observations %d, want %d", counts["superstep"], res.Supersteps)
	}
	if counts["compute"] != uint64(2*res.Supersteps) {
		t.Fatalf("compute observations %d, want %d", counts["compute"], 2*res.Supersteps)
	}
}

// TestUninstrumentedGraphEngine keeps the default path metric-free.
func TestUninstrumentedGraphEngine(t *testing.T) {
	g := graphgen.DefaultRMAT.Generate(stats.NewRNG(4), 8)
	if _, err := New(2).Run(g, PageRank{}, 3); err != nil {
		t.Fatal(err)
	}
}
