// Package graphengine is bdbench's Pregel-style BSP graph substrate: vertex
// programs execute in synchronized supersteps, exchange float64 messages
// along out-edges, and vote to halt. It stands in for the GraphLab-class
// stacks of the paper's survey; PageRank, connected components and
// single-source shortest paths ship as built-in programs.
package graphengine

import (
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/bdbench/bdbench/internal/datagen/graphgen"
	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/stacks"
)

// Context is the API a vertex program uses during Compute.
type Context struct {
	superstep int
	outbox    []outMsg
	halted    bool
	numVerts  int64
}

type outMsg struct {
	dst int64
	val float64
}

// Superstep returns the current superstep number (0-based).
func (c *Context) Superstep() int { return c.superstep }

// NumVertices returns the graph's vertex count.
func (c *Context) NumVertices() int64 { return c.numVerts }

// Send delivers a message to dst at the next superstep.
func (c *Context) Send(dst int64, val float64) {
	c.outbox = append(c.outbox, outMsg{dst, val})
}

// VoteToHalt marks this vertex inactive until a message wakes it.
func (c *Context) VoteToHalt() { c.halted = true }

// Vertex is the engine's per-vertex state.
type Vertex struct {
	ID    int64
	Value float64
	Out   []int64
}

// Program is a vertex program in the Pregel model.
type Program interface {
	// Init sets the vertex's initial value before superstep 0.
	Init(v *Vertex)
	// Compute processes incoming messages and may mutate the value, send
	// messages and vote to halt.
	Compute(v *Vertex, msgs []float64, ctx *Context)
	// Name identifies the program.
	Name() string
}

// Result reports an engine run.
type Result struct {
	Supersteps   int
	MessagesSent int64
	Wall         time.Duration
	Values       []float64
	Halted       bool // true if all vertices halted before MaxSupersteps
}

// Engine executes programs with a fixed worker pool.
type Engine struct {
	workers int
	rec     metrics.Recorder
}

// New returns an engine with the given parallelism (clamped to >= 1).
func New(workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	return &Engine{workers: workers}
}

// Instrument attaches a measurement recorder and returns the engine. Each
// BSP worker records its per-superstep compute wall time into a private
// shard minted from rec, and the coordinator records whole-superstep wall
// times, all without shared-lock contention on the compute path.
func (e *Engine) Instrument(rec metrics.Recorder) *Engine {
	e.rec = rec
	return e
}

// Name implements stacks.Stack.
func (e *Engine) Name() string { return "bdbench-graphengine" }

// Type implements stacks.Stack.
func (e *Engine) Type() stacks.Type { return stacks.TypeGraph }

var _ stacks.Stack = (*Engine)(nil)

// Run executes the program on the graph for at most maxSupersteps.
func (e *Engine) Run(g *graphgen.Graph, prog Program, maxSupersteps int) (Result, error) {
	if g.N == 0 {
		return Result{}, fmt.Errorf("graphengine: empty graph")
	}
	if maxSupersteps < 1 {
		maxSupersteps = 1
	}
	n := g.N
	adj := g.Adjacency()
	verts := make([]Vertex, n)
	for i := int64(0); i < n; i++ {
		verts[i] = Vertex{ID: i, Out: adj[i]}
		prog.Init(&verts[i])
	}
	halted := make([]bool, n)
	inbox := make([][]float64, n)
	var totalMsgs int64
	start := time.Now()

	// One private shard per worker, reused across supersteps: only worker w
	// touches computeRefs[w] during a superstep, so compute-time recording
	// never contends. The OpRefs are resolved here, once, so the superstep
	// loop records through direct histogram handles instead of per-call
	// label lookups (bdvet:oprefed enforces this).
	var computeRefs []metrics.OpRef
	var superstepRef metrics.OpRef
	if e.rec != nil {
		superstepRef = metrics.OpRefOf(metrics.SubstrateShardOf(e.rec), "superstep")
		computeRefs = make([]metrics.OpRef, e.workers)
		for w := range computeRefs {
			computeRefs[w] = metrics.OpRefOf(metrics.SubstrateShardOf(e.rec), "compute")
		}
	}

	res := Result{}
	for step := 0; step < maxSupersteps; step++ {
		stepStart := superstepRef.StartTimer()
		active := false
		// Partition vertices across workers; each worker accumulates its
		// own outboxes to avoid contention, merged after the barrier.
		type workerOut struct {
			msgs   []outMsg
			worked bool
		}
		outs := make([]workerOut, e.workers)
		var wg sync.WaitGroup
		for w := 0; w < e.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var computeRef metrics.OpRef
				if computeRefs != nil {
					computeRef = computeRefs[w]
				}
				computeStart := computeRef.StartTimer()
				defer computeRef.ObserveSince(computeStart)
				lo := n * int64(w) / int64(e.workers)
				hi := n * int64(w+1) / int64(e.workers)
				ctx := Context{superstep: step, numVerts: n}
				for v := lo; v < hi; v++ {
					msgs := inbox[v]
					if halted[v] && len(msgs) == 0 {
						continue
					}
					halted[v] = false
					ctx.outbox = ctx.outbox[:0]
					ctx.halted = false
					prog.Compute(&verts[v], msgs, &ctx)
					inbox[v] = nil
					if ctx.halted {
						halted[v] = true
					} else {
						outs[w].worked = true
					}
					outs[w].msgs = append(outs[w].msgs, ctx.outbox...)
					outs[w].worked = outs[w].worked || len(ctx.outbox) > 0
				}
			}(w)
		}
		wg.Wait()
		// Barrier: deliver messages for the next superstep.
		delivered := int64(0)
		for _, wo := range outs {
			for _, m := range wo.msgs {
				if m.dst < 0 || m.dst >= n {
					return Result{}, fmt.Errorf("graphengine: message to vertex %d out of range", m.dst)
				}
				inbox[m.dst] = append(inbox[m.dst], m.val)
				delivered++
			}
			active = active || wo.worked
		}
		totalMsgs += delivered
		res.Supersteps = step + 1
		superstepRef.ObserveSince(stepStart)
		if !active && delivered == 0 {
			res.Halted = true
			break
		}
	}
	res.MessagesSent = totalMsgs
	res.Wall = time.Since(start)
	res.Values = make([]float64, n)
	for i := range verts {
		res.Values[i] = verts[i].Value
	}
	return res, nil
}

// PageRank is the canonical web-graph program: value converges to the
// stationary visit probability with the given damping.
type PageRank struct {
	Damping float64 // default 0.85
}

// Name implements Program.
func (p PageRank) Name() string { return "pagerank" }

// Init implements Program.
func (p PageRank) Init(v *Vertex) { v.Value = 1 }

func (p PageRank) damping() float64 {
	if p.Damping <= 0 || p.Damping >= 1 {
		return 0.85
	}
	return p.Damping
}

// Compute implements Program.
func (p PageRank) Compute(v *Vertex, msgs []float64, ctx *Context) {
	d := p.damping()
	if ctx.Superstep() > 0 {
		sum := 0.0
		for _, m := range msgs {
			sum += m
		}
		v.Value = (1 - d) + d*sum
	}
	if len(v.Out) > 0 {
		share := v.Value / float64(len(v.Out))
		for _, dst := range v.Out {
			ctx.Send(dst, share)
		}
	}
	// PageRank runs for a fixed superstep budget; vertices never halt
	// voluntarily, the engine's maxSupersteps bounds the run.
}

// ConnectedComponents labels every vertex with the smallest vertex id
// reachable from it (treating edges as undirected requires the graph to
// carry reverse edges; bdbench workloads add them).
type ConnectedComponents struct{}

// Name implements Program.
func (ConnectedComponents) Name() string { return "connected-components" }

// Init implements Program.
func (ConnectedComponents) Init(v *Vertex) { v.Value = float64(v.ID) }

// Compute implements Program.
func (ConnectedComponents) Compute(v *Vertex, msgs []float64, ctx *Context) {
	min := v.Value
	for _, m := range msgs {
		if m < min {
			min = m
		}
	}
	if ctx.Superstep() == 0 || min < v.Value {
		v.Value = min
		for _, dst := range v.Out {
			ctx.Send(dst, min)
		}
	}
	ctx.VoteToHalt()
}

// SSSP computes single-source shortest hop counts from Source; unreached
// vertices end at +Inf.
type SSSP struct {
	Source int64
}

// Name implements Program.
func (s SSSP) Name() string { return "sssp" }

// Init implements Program.
func (s SSSP) Init(v *Vertex) {
	if v.ID == s.Source {
		v.Value = 0
	} else {
		v.Value = math.Inf(1)
	}
}

// Compute implements Program.
func (s SSSP) Compute(v *Vertex, msgs []float64, ctx *Context) {
	best := v.Value
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	changed := best < v.Value
	if ctx.Superstep() == 0 && v.ID == s.Source {
		changed = true
	}
	if changed {
		v.Value = best
		for _, dst := range v.Out {
			ctx.Send(dst, v.Value+1)
		}
	}
	ctx.VoteToHalt()
}

// Undirected returns a copy of g with reverse edges added, which CC and
// SSSP need to treat the graph as undirected.
func Undirected(g *graphgen.Graph) *graphgen.Graph {
	out := &graphgen.Graph{N: g.N, Edges: make([]graphgen.Edge, 0, 2*len(g.Edges))}
	out.Edges = append(out.Edges, g.Edges...)
	for _, e := range g.Edges {
		out.Edges = append(out.Edges, graphgen.Edge{Src: e.Dst, Dst: e.Src})
	}
	return out
}
