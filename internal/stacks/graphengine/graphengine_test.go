package graphengine

import (
	"math"
	"testing"

	"github.com/bdbench/bdbench/internal/datagen/graphgen"
	"github.com/bdbench/bdbench/internal/stacks"
	"github.com/bdbench/bdbench/internal/stats"
)

// chain returns 0 -> 1 -> 2 -> ... -> n-1.
func chain(n int64) *graphgen.Graph {
	g := &graphgen.Graph{N: n}
	for i := int64(0); i+1 < n; i++ {
		g.Edges = append(g.Edges, graphgen.Edge{Src: i, Dst: i + 1})
	}
	return g
}

func TestPageRankStar(t *testing.T) {
	// Star: every leaf points at vertex 0; 0 points nowhere. Vertex 0 must
	// end with the highest rank.
	g := &graphgen.Graph{N: 6}
	for i := int64(1); i < 6; i++ {
		g.Edges = append(g.Edges, graphgen.Edge{Src: i, Dst: 0})
	}
	e := New(4)
	res, err := e.Run(g, PageRank{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i < 6; i++ {
		if res.Values[0] <= res.Values[i] {
			t.Fatalf("hub rank %.3f not above leaf %d rank %.3f", res.Values[0], i, res.Values[i])
		}
	}
	if res.MessagesSent == 0 {
		t.Fatal("no messages sent")
	}
}

func TestPageRankMatchesPowerIteration(t *testing.T) {
	g := graphgen.DefaultRMAT.Generate(stats.NewRNG(1), 7)
	e := New(4)
	// Superstep 0 only scatters the initial value, so N+1 supersteps
	// perform N rank-update rounds.
	res, err := e.Run(g, PageRank{}, 31)
	if err != nil {
		t.Fatal(err)
	}
	// Independent dense power iteration for reference.
	n := int(g.N)
	adj := g.Adjacency()
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1
	}
	for it := 0; it < 30; it++ {
		for i := range next {
			next[i] = 0.15
		}
		for v := 0; v < n; v++ {
			if len(adj[v]) == 0 {
				continue
			}
			share := 0.85 * rank[v] / float64(len(adj[v]))
			for _, d := range adj[v] {
				next[d] += share
			}
		}
		rank, next = next, rank
	}
	for i := 0; i < n; i++ {
		if math.Abs(res.Values[i]-rank[i]) > 1e-6 {
			t.Fatalf("vertex %d: engine %.8f vs reference %.8f", i, res.Values[i], rank[i])
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} and {3,4}.
	g := &graphgen.Graph{N: 5, Edges: []graphgen.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4}}}
	e := New(2)
	res, err := e.Run(Undirected(g), ConnectedComponents{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("CC should converge and halt")
	}
	if res.Values[0] != 0 || res.Values[1] != 0 || res.Values[2] != 0 {
		t.Fatalf("component A labels %v", res.Values[:3])
	}
	if res.Values[3] != 3 || res.Values[4] != 3 {
		t.Fatalf("component B labels %v", res.Values[3:])
	}
}

func TestConnectedComponentsMatchesUnionFind(t *testing.T) {
	g := graphgen.BarabasiAlbert{M: 2}.Generate(stats.NewRNG(2), 8)
	und := Undirected(g)
	e := New(4)
	res, err := e.Run(und, ConnectedComponents{}, 200)
	if err != nil {
		t.Fatal(err)
	}
	wantCount, _ := und.ConnectedComponents()
	gotLabels := map[float64]bool{}
	for _, v := range res.Values {
		gotLabels[v] = true
	}
	if len(gotLabels) != wantCount {
		t.Fatalf("engine found %d components, union-find %d", len(gotLabels), wantCount)
	}
}

func TestSSSPChain(t *testing.T) {
	g := chain(6)
	e := New(2)
	res, err := e.Run(g, SSSP{Source: 0}, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 6; i++ {
		if res.Values[i] != float64(i) {
			t.Fatalf("dist[%d] = %v, want %d", i, res.Values[i], i)
		}
	}
}

func TestSSSPUnreachable(t *testing.T) {
	g := &graphgen.Graph{N: 3, Edges: []graphgen.Edge{{Src: 0, Dst: 1}}}
	e := New(1)
	res, err := e.Run(g, SSSP{Source: 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Values[2], 1) {
		t.Fatalf("unreachable vertex distance %v", res.Values[2])
	}
}

func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	g := graphgen.DefaultRMAT.Generate(stats.NewRNG(3), 8)
	a, err := New(1).Run(g, PageRank{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(8).Run(g, PageRank{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if math.Abs(a.Values[i]-b.Values[i]) > 1e-9 {
			t.Fatalf("vertex %d differs across worker counts: %v vs %v", i, a.Values[i], b.Values[i])
		}
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	e := New(1)
	if _, err := e.Run(&graphgen.Graph{}, PageRank{}, 5); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestMaxSuperstepsBounds(t *testing.T) {
	g := chain(10)
	e := New(2)
	res, err := e.Run(g, PageRank{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 3 {
		t.Fatalf("supersteps %d, want 3", res.Supersteps)
	}
	if res.Halted {
		t.Fatal("PageRank should not report convergence-halt")
	}
}

func TestUndirectedDoublesEdges(t *testing.T) {
	g := chain(4)
	u := Undirected(g)
	if len(u.Edges) != 2*len(g.Edges) {
		t.Fatalf("edges %d, want %d", len(u.Edges), 2*len(g.Edges))
	}
}

func TestStackInterfaceAndNames(t *testing.T) {
	e := New(0)
	if e.Name() == "" || e.Type() != stacks.TypeGraph {
		t.Fatal("stack identity wrong")
	}
	for _, p := range []Program{PageRank{}, ConnectedComponents{}, SSSP{}} {
		if p.Name() == "" {
			t.Fatalf("%T empty name", p)
		}
	}
}
