package loadgen

import (
	"testing"
	"time"
)

// TestScheduleDeterministic is the load generator's core guarantee: the
// same (process, rate, duration, seed) tuple yields the identical arrival
// schedule — dispatch parallelism can never perturb the offered load,
// because the schedule is fully materialized before any worker runs.
func TestScheduleDeterministic(t *testing.T) {
	for _, name := range Processes() {
		p, err := ParseProcess(name)
		if err != nil {
			t.Fatalf("ParseProcess(%q): %v", name, err)
		}
		p = withTrace(p)
		a := Schedule(p, 500, 2*time.Second, 42)
		b := Schedule(p, 500, 2*time.Second, 42)
		if len(a) == 0 {
			t.Fatalf("%s: empty schedule", name)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: schedule lengths differ: %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: offset %d differs: %v vs %v", name, i, a[i], b[i])
			}
		}
		// A different seed must change the stochastic processes' schedules.
		if name == "poisson" {
			c := Schedule(p, 500, 2*time.Second, 43)
			same := len(a) == len(c)
			if same {
				for i := range a {
					if a[i] != c[i] {
						same = false
						break
					}
				}
			}
			if same {
				t.Fatalf("%s: seeds 42 and 43 produced identical schedules", name)
			}
		}
	}
}

// TestScheduleWellFormed checks every process's invariants: offsets sorted,
// inside the window, with an arrival count near rate×duration.
func TestScheduleWellFormed(t *testing.T) {
	const rate, window = 200.0, 5 * time.Second
	want := rate * window.Seconds()
	for _, name := range Processes() {
		p, _ := ParseProcess(name)
		p = withTrace(p)
		sched := Schedule(p, rate, window, 7)
		for i, off := range sched {
			if off < 0 || off >= window {
				t.Fatalf("%s: offset %d = %v outside [0, %v)", name, i, off, window)
			}
			if i > 0 && off < sched[i-1] {
				t.Fatalf("%s: offsets not sorted at %d: %v < %v", name, i, off, sched[i-1])
			}
		}
		// Poisson count varies (stddev ≈ sqrt(n) ≈ 32); allow 15% everywhere.
		if n := float64(len(sched)); n < want*0.85 || n > want*1.15 {
			t.Fatalf("%s: %d arrivals, want about %.0f", name, len(sched), want)
		}
	}
}

// TestPoissonInterArrivalMean verifies the exponential gaps have mean
// 1/rate: over 10k arrivals the sample mean must land within 5%.
func TestPoissonInterArrivalMean(t *testing.T) {
	const rate = 1000.0
	sched := Schedule(Poisson{}, rate, 10*time.Second, 99)
	if len(sched) < 5000 {
		t.Fatalf("only %d arrivals", len(sched))
	}
	var sum time.Duration
	for i := 1; i < len(sched); i++ {
		sum += sched[i] - sched[i-1]
	}
	mean := sum.Seconds() / float64(len(sched)-1)
	want := 1 / rate
	if mean < want*0.95 || mean > want*1.05 {
		t.Fatalf("poisson inter-arrival mean %.6fs, want %.6fs ±5%%", mean, want)
	}
}

// TestConstantSpacing pins the constant process to exact 1/rate gaps.
func TestConstantSpacing(t *testing.T) {
	sched := Schedule(Constant{}, 100, time.Second, 0)
	if len(sched) != 100 {
		t.Fatalf("got %d arrivals, want 100", len(sched))
	}
	for i, off := range sched {
		if want := time.Duration(i) * 10 * time.Millisecond; off != want {
			t.Fatalf("offset %d = %v, want %v", i, off, want)
		}
	}
}

// TestBurstyOnOff verifies the on/off shape: every arrival falls in the
// first (jittered) on-fraction of its cycle, and the off tail is silent.
func TestBurstyOnOff(t *testing.T) {
	b := Bursty{Cycle: time.Second, OnFraction: 0.3}
	sched := Schedule(b, 100, 4*time.Second, 11)
	if len(sched) == 0 {
		t.Fatal("empty schedule")
	}
	// Jitter shifts each burst's start within its cycle's slack, but the
	// burst itself spans at most the on-window: within any single cycle,
	// max-min ≤ on-window.
	byCycle := map[int64][]time.Duration{}
	for _, off := range sched {
		byCycle[int64(off/time.Second)] = append(byCycle[int64(off/time.Second)], off)
	}
	for cycle, offs := range byCycle {
		span := offs[len(offs)-1] - offs[0]
		if span > 300*time.Millisecond+time.Millisecond {
			t.Fatalf("cycle %d: burst spans %v, want ≤ 300ms", cycle, span)
		}
	}
}

// TestBurstyFractionalRates is the regression test for per-cycle count
// truncation: the mean offered rate must hold for rates that are not a
// whole number per cycle, including rates below one arrival per cycle.
func TestBurstyFractionalRates(t *testing.T) {
	for _, tc := range []struct {
		rate   float64
		window time.Duration
		want   int
	}{
		{0.2, 10 * time.Second, 2},
		{2.5, 10 * time.Second, 25},
		{10.9, 10 * time.Second, 109},
	} {
		sched := Schedule(Bursty{}, tc.rate, tc.window, 5)
		if len(sched) != tc.want {
			t.Fatalf("bursty rate=%g over %v: %d arrivals, want %d",
				tc.rate, tc.window, len(sched), tc.want)
		}
	}
}

// TestRampIncreasesDensity verifies ramp arrivals concentrate late: the
// second half of the window must hold clearly more arrivals than the first.
func TestRampIncreasesDensity(t *testing.T) {
	sched := Schedule(Ramp{}, 1000, 2*time.Second, 0)
	var early, late int
	for _, off := range sched {
		if off < time.Second {
			early++
		} else {
			late++
		}
	}
	// Λ(d/2) = rate·d/4: exactly a quarter of arrivals land in the first half.
	if late <= 2*early {
		t.Fatalf("ramp not ramping: %d early vs %d late arrivals", early, late)
	}
}

// TestParseProcess covers the registry: all names, the empty-string
// default, and the error path.
func TestParseProcess(t *testing.T) {
	for _, name := range Processes() {
		p, err := ParseProcess(name)
		if err != nil {
			t.Fatalf("ParseProcess(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ParseProcess(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := ParseProcess(""); err != nil || p.Name() != "constant" {
		t.Fatalf("empty name: got %v, %v; want constant", p, err)
	}
	if _, err := ParseProcess("fractal"); err == nil {
		t.Fatal("unknown process accepted")
	}
}
