package loadgen

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// TestShardSchedulePartition: the shards of a schedule interleave back into
// exactly the single-process schedule — same intended start times, same
// order, nothing dispatched twice or dropped. Offsets stay absolute, so N
// shards driving the same (rate, seed) offer the original arrival pattern,
// not a rescaled one.
func TestShardSchedulePartition(t *testing.T) {
	for _, proc := range []Process{Constant{}, Poisson{}} {
		full := Schedule(proc, 500, time.Second, 99)
		if len(full) < 10 {
			t.Fatalf("%s: schedule too short to shard meaningfully (%d)", proc.Name(), len(full))
		}
		for count := 1; count <= 5; count++ {
			shards := make([][]time.Duration, count)
			for index := 0; index < count; index++ {
				shards[index] = ShardSchedule(full, index, count)
			}
			rebuilt := make([]time.Duration, 0, len(full))
			for i := 0; i < len(full); i++ {
				rebuilt = append(rebuilt, shards[i%count][i/count])
			}
			if !reflect.DeepEqual(rebuilt, full) {
				t.Fatalf("%s count=%d: shards do not interleave back into the schedule", proc.Name(), count)
			}
		}
	}
}

func TestShardScheduleEdges(t *testing.T) {
	sched := []time.Duration{1, 2, 3}
	if got := ShardSchedule(sched, 0, 1); !reflect.DeepEqual(got, sched) {
		t.Fatalf("count=1 altered the schedule: %v", got)
	}
	if got := ShardSchedule(sched, 2, 5); !reflect.DeepEqual(got, []time.Duration{3}) {
		t.Fatalf("shard 2/5 of 3 arrivals = %v, want [3]", got)
	}
	if got := ShardSchedule(sched, 4, 5); len(got) != 0 {
		t.Fatalf("shard 4/5 of 3 arrivals = %v, want empty", got)
	}
}

// TestRunShardedDispatch: sharded runs together execute exactly the full
// schedule's operation count, and each run's Offered rate still reports the
// configured (not the per-shard) load basis.
func TestRunShardedDispatch(t *testing.T) {
	base := Options{
		Rate:     2000,
		Duration: 50 * time.Millisecond,
		Seed:     7,
		Sleep:    func(context.Context, time.Duration) {}, // dispatch immediately
	}
	want := len(Schedule(Constant{}, base.Rate, base.Duration, base.Seed))
	const count = 3
	var total atomic.Int64
	for index := 0; index < count; index++ {
		opts := base
		opts.ShardIndex = index
		opts.ShardCount = count
		var mine atomic.Int64
		st, err := Run(context.Background(), opts, func(context.Context) error {
			mine.Add(1)
			total.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("shard %d: %v", index, err)
		}
		if got := ShardSchedule(Schedule(Constant{}, base.Rate, base.Duration, base.Seed), index, count); int64(len(got)) != mine.Load() {
			t.Fatalf("shard %d dispatched %d ops, schedule slice has %d", index, mine.Load(), len(got))
		}
		if int64(st.Dispatched) != mine.Load() || st.Scheduled != st.Dispatched {
			t.Fatalf("shard %d stats report %d/%d scheduled/dispatched, op ran %d times",
				index, st.Scheduled, st.Dispatched, mine.Load())
		}
		if st.Offered != base.Rate {
			t.Fatalf("shard %d offered %g, want the configured rate %g", index, st.Offered, base.Rate)
		}
	}
	if total.Load() != int64(want) {
		t.Fatalf("shards dispatched %d ops in total, single-process schedule has %d", total.Load(), want)
	}
}

func TestRunShardValidation(t *testing.T) {
	cases := []struct{ index, count int }{
		{2, 2}, {-1, 2}, {1, 0}, {0, -1},
	}
	for _, tc := range cases {
		opts := Options{Rate: 100, Duration: 10 * time.Millisecond, ShardIndex: tc.index, ShardCount: tc.count}
		if _, err := Run(context.Background(), opts, func(context.Context) error { return nil }); err == nil {
			t.Fatalf("shard %d/%d accepted", tc.index, tc.count)
		}
	}
}
