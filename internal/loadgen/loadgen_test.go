package loadgen

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/raceflag"
)

// TestRunExecutesSchedule runs a trivial operation under a constant load
// and checks the accounting: everything scheduled is dispatched, nothing
// errors, achieved tracks offered.
func TestRunExecutesSchedule(t *testing.T) {
	var calls atomic.Int64
	st, err := Run(context.Background(), Options{Rate: 500, Duration: 200 * time.Millisecond},
		func(context.Context) error { calls.Add(1); return nil })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Scheduled != 100 {
		t.Fatalf("scheduled %d, want 100", st.Scheduled)
	}
	if st.Dispatched != st.Scheduled || int(calls.Load()) != st.Scheduled {
		t.Fatalf("dispatched %d, calls %d, want %d", st.Dispatched, calls.Load(), st.Scheduled)
	}
	if st.Errors != 0 || st.Skipped != 0 {
		t.Fatalf("errors=%d skipped=%d, want 0/0", st.Errors, st.Skipped)
	}
	if st.Achieved < 400 || st.Achieved > 550 {
		t.Fatalf("achieved %.0f/s, want about 500/s", st.Achieved)
	}
	if st.Latency.Count != 100 || st.Service.Count != 100 || st.Wait.Count != 100 {
		t.Fatalf("latency counts %d/%d/%d, want 100 each",
			st.Latency.Count, st.Service.Count, st.Wait.Count)
	}
}

// TestCoordinatedOmissionGuard is the regression test for intended-start
// recording. One operation stalls; with a single executor every subsequent
// arrival queues behind it. A closed-loop (service-time) view sees only
// fast operations plus one slow one — the queueing delay vanishes. The
// intended-start view must charge that delay to every queued request.
func TestCoordinatedOmissionGuard(t *testing.T) {
	const stall = 80 * time.Millisecond
	var n atomic.Int64
	st, err := Run(context.Background(), Options{
		Rate:        200, // 5ms apart
		Duration:    150 * time.Millisecond,
		MaxInflight: 1, // a single server: arrivals queue behind the stall
	}, func(context.Context) error {
		if n.Add(1) == 1 {
			time.Sleep(stall)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Dispatched != st.Scheduled {
		t.Fatalf("dispatched %d of %d", st.Dispatched, st.Scheduled)
	}
	// The service view is blind to the stall: its median is the fast path.
	if st.Service.P50 > 10*time.Millisecond {
		t.Fatalf("service p50 %v unexpectedly slow", st.Service.P50)
	}
	// The intended-start view is not: arrivals queued behind the stall carry
	// their full waiting time, so the p95 tail must be within reach of the
	// stall itself, far above anything the service view reports.
	if st.Latency.P95 < stall/2 {
		t.Fatalf("intended-start p95 %v did not surface the %v stall (coordinated omission)",
			st.Latency.P95, stall)
	}
	if st.Wait.Max < stall/2 {
		t.Fatalf("queueing delay max %v did not surface the stall", st.Wait.Max)
	}
	// And the two views must actually diverge.
	if st.Latency.P95 < 4*st.Service.P50 {
		t.Fatalf("intended p95 %v vs service p50 %v: views did not diverge",
			st.Latency.P95, st.Service.P50)
	}
}

// TestRunRecordsIntoCollector verifies the metrics-pipeline mirror: the
// request/service/wait observations land substrate-marked, so the
// collector's Throughput still counts only the operations' own user-level
// measurements — each logical operation exactly once, never inflated by
// the load generator's bookkeeping.
func TestRunRecordsIntoCollector(t *testing.T) {
	c := metrics.NewCollector("under-load")
	c.Start()
	st, err := Run(context.Background(), Options{
		Rate: 300, Duration: 100 * time.Millisecond, Rec: c,
	}, func(context.Context) error {
		// The operation measures itself at the user level, as a real
		// workload execution does.
		c.ObserveLatency("work", time.Microsecond)
		return nil
	})
	c.Stop()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	res := c.Snapshot()
	byOp := map[string]metrics.OpStats{}
	for _, op := range res.Ops {
		byOp[op.Op] = op
	}
	for _, name := range []string{OpRequest, OpService, OpWait} {
		rec, ok := byOp[name]
		if !ok || !rec.Substrate {
			t.Fatalf("%s missing or not substrate-marked: %+v", name, byOp[name])
		}
		if rec.Count != uint64(st.Dispatched) {
			t.Fatalf("%s count %d, want %d", name, rec.Count, st.Dispatched)
		}
	}
	if work, ok := byOp["work"]; !ok || work.Substrate {
		t.Fatalf("operation's own measurement missing or demoted: %+v", byOp["work"])
	}
	// Throughput counts the operations' own observations once — not the
	// loadgen echoes on top.
	want := float64(st.Dispatched) / res.Elapsed.Seconds()
	if res.Throughput < want*0.99 || res.Throughput > want*1.01 {
		t.Fatalf("throughput %.1f double-counts loadgen ops (want %.1f)", res.Throughput, want)
	}
}

// TestRunCountsErrorsAndPanics verifies per-operation failure isolation.
func TestRunCountsErrorsAndPanics(t *testing.T) {
	var n atomic.Int64
	st, err := Run(context.Background(), Options{Rate: 100, Duration: 100 * time.Millisecond},
		func(context.Context) error {
			switch n.Add(1) {
			case 1:
				return errors.New("op failed")
			case 2:
				panic("op exploded")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Errors != 2 {
		t.Fatalf("errors %d, want 2 (one error + one panic)", st.Errors)
	}
	if st.Dispatched != st.Scheduled {
		t.Fatalf("dispatched %d of %d", st.Dispatched, st.Scheduled)
	}
}

// TestRunCancellation verifies a cancelled context stops dispatch, reports
// the remainder as skipped and returns the context error.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int64
	_, err := Run(ctx, Options{Rate: 100, Duration: 2 * time.Second},
		func(context.Context) error {
			if n.Add(1) == 3 {
				cancel()
			}
			return nil
		})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled wrap, got %v", err)
	}
	if got := int(n.Load()); got >= 200 {
		t.Fatalf("dispatch did not stop: %d operations ran", got)
	}
}

// TestRunRejectsBadOptions covers the validation errors.
func TestRunRejectsBadOptions(t *testing.T) {
	if _, err := Run(context.Background(), Options{Rate: 0, Duration: time.Second}, nil); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(context.Background(), Options{Rate: 10, Duration: 0}, nil); err == nil {
		t.Fatal("zero duration accepted")
	}
}

// TestRunVirtualClock drives the pacer on an injected clock and observes
// the dispatcher's sleeps: with instant operations it must sleep exactly
// the schedule's gaps — the dispatcher paces on the clock, never on
// completions. (The sleep hook is only ever called by the dispatcher
// goroutine, so the slice needs no lock.)
func TestRunVirtualClock(t *testing.T) {
	var clock atomic.Int64 // nanoseconds since the virtual epoch
	base := time.Unix(1000, 0)
	now := func() time.Time { return base.Add(time.Duration(clock.Load())) }
	var slept []time.Duration
	sleep := func(_ context.Context, d time.Duration) { clock.Add(int64(d)); slept = append(slept, d) }
	st, err := Run(context.Background(), Options{
		Rate: 10, Duration: time.Second,
		Now: now, Sleep: sleep,
	}, func(context.Context) error { return nil })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Scheduled != 10 || st.Dispatched != 10 {
		t.Fatalf("scheduled %d dispatched %d, want 10/10", st.Scheduled, st.Dispatched)
	}
	// First arrival is at offset 0 (no sleep); the other nine are 100ms
	// apart on an otherwise idle virtual clock.
	if len(slept) != 9 {
		t.Fatalf("dispatcher slept %d times, want 9 (%v)", len(slept), slept)
	}
	for i, d := range slept {
		if d != 100*time.Millisecond {
			t.Fatalf("sleep %d = %v, want 100ms", i, d)
		}
	}
}

// TestRunCancelDuringSleep verifies the pacing sleep itself honors the
// context: a sparse schedule (one arrival per second) must not hold
// shutdown hostage for the remainder of a pacing gap.
func TestRunCancelDuringSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var st Stats
	var err error
	start := time.Now()
	go func() {
		defer close(done)
		st, err = Run(ctx, Options{Rate: 1, Duration: 30 * time.Second},
			func(context.Context) error { return nil })
	}()
	time.Sleep(50 * time.Millisecond) // let the dispatcher park in its pacing sleep
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return promptly after cancellation during a pacing sleep")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shutdown took %v: pacing sleep ignored the context", elapsed)
	}
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled wrap, got %v", err)
	}
	if st.Skipped == 0 {
		t.Fatalf("cancelled run reported no skipped arrivals: %+v", st)
	}
}

// TestSleepContextTimerReuse exercises sleepContext directly: the timer
// returned from one call must be reusable by the next, and a cancelled
// context must cut a long sleep short.
func TestSleepContextTimerReuse(t *testing.T) {
	timer := sleepContext(context.Background(), nil, time.Millisecond)
	if timer == nil {
		t.Fatal("sleepContext returned a nil timer")
	}
	timer2 := sleepContext(context.Background(), timer, time.Millisecond)
	if timer2 != timer {
		t.Fatal("sleepContext did not reuse the timer")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	sleepContext(ctx, timer, time.Minute)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled sleep took %v", elapsed)
	}
}

// TestDispatchSteadyStateZeroAlloc asserts the per-operation hot path —
// execOne through the histograms and the pre-resolved OpRefs — allocates
// nothing once the run state exists. This is the loadgen half of the
// zero-allocation contract; BenchmarkDispatchSteadyState gates it in CI.
func TestDispatchSteadyStateZeroAlloc(t *testing.T) {
	c := metrics.NewCollector("wl")
	op := func(context.Context) error { return nil }
	base := time.Unix(1000, 0)
	now := func() time.Time { return base }
	r := newRunState(context.Background(), op, c, now, 0)
	r.execOne(0) // warm the substrate labels
	allocs := testing.AllocsPerRun(1000, func() {
		r.execOne(time.Millisecond)
	})
	if raceflag.Enabled {
		t.Skipf("allocation counts not asserted under -race (measured %.1f)", allocs)
	}
	if allocs != 0 {
		t.Errorf("dispatch steady state: %.1f allocs/op, want 0", allocs)
	}
}
