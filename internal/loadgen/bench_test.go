package loadgen

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/bdbench/bdbench/internal/metrics"
)

// BenchmarkSchedule measures arrival-schedule materialization per process
// — the fixed cost a run pays before the first dispatch (100k arrivals
// per iteration at 10k ops/s over 10s).
func BenchmarkSchedule(b *testing.B) {
	for _, name := range Processes() {
		p, _ := ParseProcess(name)
		p = withTrace(p)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sched := Schedule(p, 10000, 10*time.Second, uint64(i))
				if len(sched) == 0 {
					b.Fatal("empty schedule")
				}
			}
		})
	}
}

// BenchmarkDispatchSteadyState measures the per-operation hot path in
// isolation — execOne through the histograms and pre-resolved OpRefs, on a
// fixed clock so time-source cost is excluded. This is the zero-allocation
// contract's loadgen half: the allocs/op column must stay at 0 (benchdiff
// gates it against the baseline with exact-zero semantics).
func BenchmarkDispatchSteadyState(b *testing.B) {
	c := metrics.NewCollector("bench")
	base := time.Unix(1000, 0)
	now := func() time.Time { return base }
	r := newRunState(context.Background(), func(context.Context) error { return nil }, c, now, 0)
	r.execOne(0) // warm the substrate labels
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.execOne(time.Millisecond)
	}
}

// BenchmarkDispatchOverhead measures the driver's per-operation cost with
// a no-op operation at increasing offered rates over a fixed 50ms window:
// the gap between offered and achieved is pure load-generator overhead.
func BenchmarkDispatchOverhead(b *testing.B) {
	for _, rate := range []float64{1000, 10000} {
		b.Run(fmt.Sprintf("rate=%.0f", rate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := Run(context.Background(), Options{
					Rate: rate, Duration: 50 * time.Millisecond, Seed: uint64(i),
				}, func(context.Context) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(st.Achieved/st.Offered, "achieved/offered")
			}
		})
	}
}
