package loadgen

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// testTrace is a synthetic bursty trace: 10 one-second bursts of 20 events
// each — enough structure to make resampling observable.
func testTrace() Trace {
	offs := make([]time.Duration, 0, 200)
	for burst := 0; burst < 10; burst++ {
		base := time.Duration(burst) * time.Second
		for i := 0; i < 20; i++ {
			offs = append(offs, base+time.Duration(i)*10*time.Millisecond)
		}
	}
	return Trace{Source: "synthetic", Offsets: offs}
}

// withTrace injects the synthetic trace into a Replay process; other
// processes pass through. Tests that loop over Processes() use it so the
// trace-driven process schedules like the analytic ones.
func withTrace(p Process) Process {
	if r, ok := p.(Replay); ok {
		r.Trace = testTrace()
		return r
	}
	return p
}

// TestTraceFromLog extracts timestamps from combined-log lines: events are
// sorted (the weblog corpus's chunked time bases interleave), rebased to
// zero, and junk lines are skipped.
func TestTraceFromLog(t *testing.T) {
	line := func(ts string) string {
		return fmt.Sprintf(`10.0.0.1 - - [%s] "GET /i HTTP/1.1" 200 123 "-" "bd"`, ts)
	}
	raw := strings.Join([]string{
		line("01/Mar/2014:00:00:05 +0000"),
		"not a log line",
		line("01/Mar/2014:00:00:02 +0000"), // out of order on purpose
		line("01/Mar/2014:00:00:09 +0000"),
		`10.0.0.2 - - [bad timestamp] "GET / HTTP/1.1" 200 1 "-" "bd"`,
	}, "\n")
	tr, err := TraceFromLog("test", []byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, 3 * time.Second, 7 * time.Second}
	if len(tr.Offsets) != len(want) {
		t.Fatalf("got %d offsets, want %d", len(tr.Offsets), len(want))
	}
	for i, off := range tr.Offsets {
		if off != want[i] {
			t.Fatalf("offset %d = %v, want %v", i, off, want[i])
		}
	}
	if tr.Span() != 7*time.Second {
		t.Fatalf("span = %v, want 7s", tr.Span())
	}
}

// TestTraceFromLogTooFew: fewer than two timestamped events is an error —
// there is no arrival structure to replay.
func TestTraceFromLogTooFew(t *testing.T) {
	if _, err := TraceFromLog("empty", []byte("no timestamps here")); err == nil {
		t.Fatal("expected error for a trace with no events")
	}
	one := `h - - [01/Mar/2014:00:00:00 +0000] "GET / HTTP/1.1" 200 1 "-" "x"`
	if _, err := TraceFromLog("one", []byte(one)); err == nil {
		t.Fatal("expected error for a trace with a single event")
	}
}

// TestReplayPreservesBurstStructure: the synthetic trace is silent for the
// last 80% of each one-second cycle, so a replayed schedule must
// concentrate arrivals near the burst positions instead of spreading them
// uniformly. The first half of each replayed second (bursts rescaled onto
// the window plus jitter slack) must hold the large majority of arrivals.
func TestReplayPreservesBurstStructure(t *testing.T) {
	r := Replay{Trace: testTrace()}
	const rate, window = 100.0, 10 * time.Second
	sched := Schedule(r, rate, window, 3)
	if len(sched) == 0 {
		t.Fatal("empty replay schedule")
	}
	inBurst := 0
	span := r.Trace.Span() // 9.19s: bursts cover the first 190ms of each second
	for _, off := range sched {
		// Map the arrival back into trace time; it must land in (or very
		// near) a burst. Quantile interpolation lets a handful of arrivals
		// fall inside silent gaps, and jitter adds ~±1ms.
		tt := time.Duration(float64(off) / float64(window) * float64(span))
		if tt%time.Second < 250*time.Millisecond {
			inBurst++
		}
	}
	if frac := float64(inBurst) / float64(len(sched)); frac < 0.85 {
		t.Fatalf("only %.0f%% of replayed arrivals land in burst windows; trace structure lost", frac*100)
	}
}

// TestReplayDeterministicAndSeeded: same seed, same schedule; different
// seeds differ (the jitter is drawn from the seeded RNG).
func TestReplayDeterministicAndSeeded(t *testing.T) {
	r := Replay{Trace: testTrace()}
	a := Schedule(r, 200, 5*time.Second, 42)
	b := Schedule(r, 200, 5*time.Second, 42)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offset %d differs across same-seed replays: %v vs %v", i, a[i], b[i])
		}
	}
	c := Schedule(r, 200, 5*time.Second, 43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical replay schedules")
	}
}

// TestReplayEmptyTrace: the zero-value Replay (what ParseProcess returns)
// must produce no arrivals — never silently fall back to an analytic
// process.
func TestReplayEmptyTrace(t *testing.T) {
	if sched := Schedule(Replay{}, 100, time.Second, 1); len(sched) != 0 {
		t.Fatalf("empty-trace replay produced %d arrivals, want 0", len(sched))
	}
}
