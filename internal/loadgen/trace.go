package loadgen

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"github.com/bdbench/bdbench/internal/stats"
)

// Trace is a recorded arrival trace: the relative start offsets of real
// events, sorted and rebased so the first event is at zero. It is the input
// of the Replay arrival process — instead of shaping arrivals analytically
// (constant, poisson, ...), a replayed schedule inherits the burst structure
// of a production log, which is the realism argument BigDataBench makes for
// trace-driven load (arXiv:1401.1406).
type Trace struct {
	// Source names where the trace came from (a corpus name, a file).
	Source string
	// Offsets are the event offsets from the first event: sorted,
	// non-negative, Offsets[0] == 0 when non-empty.
	Offsets []time.Duration
}

// Empty reports whether the trace carries fewer than two events — too few
// to define an arrival structure.
func (t Trace) Empty() bool { return len(t.Offsets) < 2 }

// Span is the window the trace covers, from first to last event.
func (t Trace) Span() time.Duration {
	if len(t.Offsets) == 0 {
		return 0
	}
	return t.Offsets[len(t.Offsets)-1]
}

// combinedLogLayout is the bracketed timestamp format of Apache
// combined-log lines, the format the weblog corpus emits.
const combinedLogLayout = "02/Jan/2006:15:04:05 -0700"

// TraceFromLog extracts an arrival trace from combined-log-format bytes:
// every line's bracketed timestamp becomes one event. Lines without a
// parseable timestamp are skipped; the events are sorted (the weblog
// corpus's chunk time bases make raw line order non-monotonic across chunk
// boundaries) and rebased to the earliest. A log yielding fewer than two
// events is an error — there is no arrival structure to replay.
func TraceFromLog(source string, raw []byte) (Trace, error) {
	var times []time.Time
	for len(raw) > 0 {
		line := raw
		if i := bytes.IndexByte(raw, '\n'); i >= 0 {
			line, raw = raw[:i], raw[i+1:]
		} else {
			raw = nil
		}
		open := bytes.IndexByte(line, '[')
		if open < 0 {
			continue
		}
		end := bytes.IndexByte(line[open:], ']')
		if end < 0 {
			continue
		}
		ts, err := time.Parse(combinedLogLayout, string(line[open+1:open+end]))
		if err != nil {
			continue
		}
		times = append(times, ts)
	}
	if len(times) < 2 {
		return Trace{}, fmt.Errorf("loadgen: trace source %q yields %d timestamped event(s); need at least 2", source, len(times))
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	offsets := make([]time.Duration, len(times))
	for i, ts := range times {
		offsets[i] = ts.Sub(times[0])
	}
	return Trace{Source: source, Offsets: offsets}, nil
}

// DefaultReplayJitter is the jitter fraction Replay applies when its Jitter
// field is zero: each arrival moves by up to ±10% of the mean gap, so two
// replays of the same trace with different seeds are realistic variations
// of each other rather than identical copies.
const DefaultReplayJitter = 0.1

// Replay is the trace-driven arrival process: it resamples a recorded
// trace's empirical arrival distribution onto the requested (rate, window),
// preserving the trace's burst structure — dense stretches of the trace
// produce dense stretches of the schedule. A small deterministic jitter
// (seeded, like every process) keeps replays from being artifacts of the
// trace's recording granularity.
//
// The zero value has no trace and produces no arrivals; ParseProcess
// returns it for name validation only. The scenario layer injects the
// trace (see its Trace spec field) before scheduling.
type Replay struct {
	// Trace is the recorded arrival structure to resample.
	Trace Trace
	// Jitter is the fraction of the mean gap each arrival may move by
	// (default DefaultReplayJitter; negative disables jitter).
	Jitter float64
}

// Name implements Process.
func (Replay) Name() string { return "replay" }

// Offsets implements Process. Arrival k of n lands at the trace's
// empirical quantile (k+½)/n — linear interpolation over the sorted trace
// offsets, rescaled from the trace's span to the window — plus jitter,
// clamped to the window. An empty trace produces no arrivals.
func (r Replay) Offsets(rate float64, d time.Duration, g *stats.RNG) []time.Duration {
	n := opCount(rate, d)
	if n <= 0 || r.Trace.Empty() {
		return nil
	}
	jitter := r.Jitter
	if jitter == 0 {
		jitter = DefaultReplayJitter
	}
	if jitter < 0 {
		jitter = 0
	}
	offs := r.Trace.Offsets
	m := len(offs)
	span := float64(r.Trace.Span())
	meanGap := float64(d) / float64(n)
	out := make([]time.Duration, 0, n)
	for k := 0; k < n; k++ {
		q := (float64(k) + 0.5) / float64(n)
		pos := q * float64(m-1)
		i := int(pos)
		if i >= m-1 {
			i = m - 2
		}
		frac := pos - float64(i)
		base := float64(offs[i]) + frac*float64(offs[i+1]-offs[i])
		var t float64
		if span > 0 {
			t = base / span * float64(d)
		}
		t += (g.Float64() - 0.5) * 2 * jitter * meanGap
		if t < 0 {
			t = 0
		}
		if t >= float64(d) {
			t = float64(d) - 1
		}
		out = append(out, time.Duration(t))
	}
	// Jitter can reorder adjacent arrivals; Process requires non-decreasing
	// offsets.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
