// Package loadgen is bdbench's open-loop load generator — the velocity
// dimension of §2.1 applied to test execution rather than data generation.
// The closed-loop engine measures how fast a workload *can* go (issue,
// wait, repeat); loadgen measures how a workload behaves under a
// *controlled offered load*: an arrival Process schedules operation start
// times up front, independently of completions, and the driver records
// every latency from the operation's *intended* start time. A stalled
// operation therefore surfaces as queueing delay in the tail percentiles
// instead of silently slowing the request stream down — the classic
// coordinated-omission error that closed-loop measurement cannot avoid.
//
// It generalizes the pacing primitive the data generators already use
// (datagen.TokenBucket paces emission to one constant rate) into pluggable
// stochastic arrival processes: constant, Poisson, bursty on/off and ramp.
// Schedules are derived from the seed alone, so the same seed and rate
// produce the same arrival times at any worker count.
package loadgen

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/bdbench/bdbench/internal/stats"
)

// Process is a pluggable arrival process: it turns an offered rate and a
// window into the intended start offsets of every operation. Offsets must
// be non-decreasing, within [0, d), and derived only from the arguments
// (including the RNG), so a schedule is reproducible from its seed.
type Process interface {
	// Name is the process's registry name ("constant", "poisson", ...).
	Name() string
	// Offsets returns the intended start offsets from the window start for a
	// mean offered rate of rate operations/second over window d.
	Offsets(rate float64, d time.Duration, g *stats.RNG) []time.Duration
}

// Constant spaces arrivals evenly at exactly 1/rate — the deterministic
// baseline every load curve starts from.
type Constant struct{}

// Name implements Process.
func (Constant) Name() string { return "constant" }

// Offsets implements Process. The RNG is unused: a constant process is
// fully determined by rate and window.
func (Constant) Offsets(rate float64, d time.Duration, _ *stats.RNG) []time.Duration {
	n := opCount(rate, d)
	gap := time.Duration(float64(time.Second) / rate)
	out := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		off := time.Duration(i) * gap
		if off >= d {
			break
		}
		out = append(out, off)
	}
	return out
}

// Poisson draws exponential inter-arrival gaps with mean 1/rate — the
// memoryless arrival stream of independent users, and the standard model
// behind latency-under-load evaluations.
type Poisson struct{}

// Name implements Process.
func (Poisson) Name() string { return "poisson" }

// Offsets implements Process.
func (Poisson) Offsets(rate float64, d time.Duration, g *stats.RNG) []time.Duration {
	// Sized for the expected count; the stream is random, so a draw-heavy
	// schedule may still grow the slice once or twice — but never per arrival.
	out := make([]time.Duration, 0, opCount(rate, d))
	var t float64 // seconds from window start
	limit := d.Seconds()
	for {
		t += g.ExpFloat64() / rate
		if t >= limit {
			return out
		}
		out = append(out, time.Duration(t*float64(time.Second)))
	}
}

// Bursty is an on/off (interrupted) arrival process: within every Cycle it
// offers the whole cycle's operations during the first OnFraction of the
// cycle and stays silent for the rest, so the *mean* rate equals the
// requested rate while the instantaneous on-phase rate is rate/OnFraction.
// It models periodic load spikes — ingest ticks, batch front-ends, thundering
// herds.
type Bursty struct {
	// Cycle is the on+off period length (default 1s).
	Cycle time.Duration
	// OnFraction is the fraction of each cycle that receives arrivals,
	// in (0, 1] (default 0.5).
	OnFraction float64
}

// Name implements Process.
func (Bursty) Name() string { return "bursty" }

// Offsets implements Process. Arrivals within a burst are evenly spaced;
// the RNG jitters each cycle's phase so bursts from different seeds do not
// align, without changing per-cycle counts.
func (b Bursty) Offsets(rate float64, d time.Duration, g *stats.RNG) []time.Duration {
	cycle := b.Cycle
	if cycle <= 0 {
		cycle = time.Second
	}
	on := b.OnFraction
	if on <= 0 || on > 1 {
		on = 0.5
	}
	perCycle := rate * cycle.Seconds()
	out := make([]time.Duration, 0, opCount(rate, d))
	for cycleStart, c := time.Duration(0), 1; cycleStart < d; cycleStart, c = cycleStart+cycle, c+1 {
		onWindow := time.Duration(float64(cycle) * on)
		// Jitter the burst's start within the slack of its own cycle.
		slack := cycle - onWindow
		jitter := time.Duration(g.Float64() * float64(slack))
		// Emit the arrivals owed cumulatively but not yet produced, so the
		// fractional part of perCycle carries across cycles and the mean
		// rate holds for any rate — including rates below one per cycle.
		n := int(perCycle*float64(c)) - int(perCycle*float64(c-1))
		if n == 0 {
			continue
		}
		gap := onWindow / time.Duration(n)
		for i := 0; i < n; i++ {
			off := cycleStart + jitter + time.Duration(i)*gap
			if off >= d {
				break
			}
			out = append(out, off)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ramp increases the instantaneous rate linearly from zero to 2×rate over
// the window, so the mean offered rate equals the requested rate. It finds
// the knee of a system's latency curve in a single run: early arrivals are
// sparse, late arrivals oversubscribe.
type Ramp struct{}

// Name implements Process.
func (Ramp) Name() string { return "ramp" }

// Offsets implements Process. With instantaneous rate r(t) = 2·rate·t/d the
// cumulative arrival count is Λ(t) = rate·t²/d, so the k-th arrival lands at
// t = sqrt(k·d/rate) — no RNG needed.
func (Ramp) Offsets(rate float64, d time.Duration, _ *stats.RNG) []time.Duration {
	n := opCount(rate, d)
	limit := d.Seconds()
	out := make([]time.Duration, 0, n)
	for k := 0; k < n; k++ {
		t := math.Sqrt(float64(k) * limit / rate)
		if t >= limit {
			break
		}
		out = append(out, time.Duration(t*float64(time.Second)))
	}
	return out
}

// opCount is the expected number of arrivals for a mean rate over a
// window, rounded so float representation error (10/s over 300ms is not
// exactly 3.0) cannot drop the last scheduled arrival; the callers' own
// `off >= d` guard bounds any overshoot.
func opCount(rate float64, d time.Duration) int {
	return int(math.Round(rate * d.Seconds()))
}

// Processes returns the built-in arrival process names, in presentation
// order.
func Processes() []string {
	return []string{"constant", "poisson", "bursty", "ramp", "replay"}
}

// ParseProcess resolves an arrival process by name. The empty string is the
// constant process, so specs may omit the field. "replay" resolves to a
// Replay with no trace — callers that schedule it must inject one (the
// scenario layer resolves the trace corpus); without a trace it produces no
// arrivals rather than silently falling back to an analytic process.
func ParseProcess(name string) (Process, error) {
	switch name {
	case "", "constant":
		return Constant{}, nil
	case "poisson":
		return Poisson{}, nil
	case "bursty":
		return Bursty{}, nil
	case "ramp":
		return Ramp{}, nil
	case "replay":
		return Replay{}, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q (have: %s)",
			name, strings.Join(Processes(), ", "))
	}
}

// Schedule materializes the process's arrival times for one run: intended
// start offsets from the window start, derived from the seed alone. The
// same (process, rate, duration, seed) tuple yields the identical schedule
// regardless of how many workers later execute it — scheduling is separated
// from dispatch precisely so parallelism cannot perturb the offered load.
func Schedule(p Process, rate float64, d time.Duration, seed uint64) []time.Duration {
	if p == nil {
		p = Constant{}
	}
	if rate <= 0 || d <= 0 {
		return nil
	}
	g := stats.NewRNG(seed).Split("loadgen/"+p.Name(), 0)
	return p.Offsets(rate, d, g)
}
