package loadgen

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/stats"
)

// The operation labels loadgen records into the metrics pipeline. OpRequest
// is the headline number: latency measured from the *intended* start, so
// queueing behind a stalled operation is charged to the requests that
// waited (the coordinated-omission guard). OpService and OpWait decompose
// it into execution time and queueing delay. All three are recorded as
// substrate-level observations: each operation is a whole workload
// execution that measures its own user-level operations into the same
// collector, so counting requests at the user level too would double-count
// Result.Throughput. The per-request digests live in Stats.
const (
	OpRequest = "request"
	OpService = "request_service"
	OpWait    = "request_wait"
)

// Options configures one open-loop run.
type Options struct {
	// Rate is the mean offered load in operations per second (> 0).
	Rate float64
	// Arrival is the arrival process; nil means Constant.
	Arrival Process
	// Duration is the scheduling window (> 0). Operations scheduled inside
	// the window may complete after it; the run waits for them.
	Duration time.Duration
	// Seed derives the arrival schedule (see Schedule).
	Seed uint64
	// MaxInflight caps concurrently executing operations. Zero means
	// unbounded — the pure open-loop model, where dispatch never waits for
	// capacity. A positive cap queues excess arrivals; their waiting time
	// still counts against OpRequest, because the clock starts at the
	// intended arrival either way.
	MaxInflight int
	// Rec, when non-nil, receives every observation in the sharded metrics
	// pipeline: OpRequest, OpService and OpWait, all substrate-level (the
	// executed operations record their own user-level measurements).
	Rec metrics.Recorder

	// Now and Sleep are injectable for tests; nil means the real clock.
	Now   func() time.Time
	Sleep func(time.Duration)
}

// LatencySummary is one latency distribution digest.
type LatencySummary struct {
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean"`
	P50   time.Duration `json:"p50"`
	P95   time.Duration `json:"p95"`
	P99   time.Duration `json:"p99"`
	Max   time.Duration `json:"max"`
}

func summarize(h *stats.AtomicLatencyHistogram) LatencySummary {
	s := h.Snapshot()
	if s.Count() == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Count: s.Count(),
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		Max:   s.Max(),
	}
}

// Stats is the outcome of one open-loop run: how much load was offered, how
// much the system absorbed, and what the latency looked like from the
// user's side (intended start) versus the server's side (actual start).
type Stats struct {
	// Arrival is the process name and Offered the configured mean rate.
	Arrival string  `json:"arrival"`
	Offered float64 `json:"offered"`
	// Window is the configured scheduling window; Elapsed the wall time from
	// the first intended arrival to the last completion.
	Window  time.Duration `json:"window"`
	Elapsed time.Duration `json:"elapsed"`
	// Scheduled counts the arrivals in the schedule; Dispatched the ones
	// that began executing; Skipped the ones abandoned to a cancelled
	// context; Errors the dispatched ones whose operation returned an error.
	Scheduled  int `json:"scheduled"`
	Dispatched int `json:"dispatched"`
	Skipped    int `json:"skipped,omitempty"`
	Errors     int `json:"errors,omitempty"`
	// Achieved is the completion rate actually sustained: successful
	// completions per second over the scheduling window (or over Elapsed
	// when completions overran the window). It tracks Offered while the
	// system keeps up and falls below it past the saturation knee.
	Achieved float64 `json:"achieved"`
	// Latency is measured from each operation's intended start (queueing
	// included — immune to coordinated omission); Service from its actual
	// start; Wait is the gap between the two.
	Latency LatencySummary `json:"latency"`
	Service LatencySummary `json:"service"`
	Wait    LatencySummary `json:"wait"`
}

// Run offers the configured load to op: it materializes the arrival
// schedule, dispatches each operation at its intended start time — never
// waiting for earlier completions — and waits for every dispatched
// operation to finish. Operation errors and panics are counted, not fatal;
// the error return is reserved for an invalid Options or a context
// cancelled before the window completes.
func Run(ctx context.Context, opts Options, op func(context.Context) error) (Stats, error) {
	if opts.Rate <= 0 {
		return Stats{}, fmt.Errorf("loadgen: rate must be positive, got %g", opts.Rate)
	}
	if opts.Duration <= 0 {
		return Stats{}, fmt.Errorf("loadgen: duration must be positive, got %v", opts.Duration)
	}
	proc := opts.Arrival
	if proc == nil {
		proc = Constant{}
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	sleep := opts.Sleep
	if sleep == nil {
		sleep = sleepContext
	}

	sched := Schedule(proc, opts.Rate, opts.Duration, opts.Seed)
	st := Stats{
		Arrival:   proc.Name(),
		Offered:   opts.Rate,
		Window:    opts.Duration,
		Scheduled: len(sched),
	}

	var (
		latHist, svcHist, waitHist stats.AtomicLatencyHistogram
		dispatched, skipped, errs  atomic.Int64
		endNs                      atomic.Int64 // latest completion, ns offset from t0
	)
	subRec := metrics.SubstrateShardOf(opts.Rec)

	t0 := now()
	execOne := func(offset time.Duration) {
		if ctx.Err() != nil {
			skipped.Add(1)
			return
		}
		dispatched.Add(1)
		intended := t0.Add(offset)
		actual := now()
		err := runIsolated(ctx, op)
		end := now()

		wait := actual.Sub(intended)
		if wait < 0 {
			wait = 0
		}
		lat := end.Sub(intended)
		svc := end.Sub(actual)
		latHist.Observe(lat)
		svcHist.Observe(svc)
		waitHist.Observe(wait)
		if subRec != nil {
			subRec.ObserveLatency(OpRequest, lat)
			subRec.ObserveLatency(OpService, svc)
			subRec.ObserveLatency(OpWait, wait)
		}
		if err != nil {
			errs.Add(1)
		}
		for {
			cur := endNs.Load()
			if ns := int64(end.Sub(t0)); ns > cur {
				if !endNs.CompareAndSwap(cur, ns) {
					continue
				}
			}
			break
		}
	}

	var wg sync.WaitGroup
	var jobs chan time.Duration
	if opts.MaxInflight > 0 {
		// A bounded pool: arrivals past the cap queue (with the queueing time
		// still charged from their intended start). The channel holds the
		// whole schedule, so the dispatcher itself never blocks on capacity.
		jobs = make(chan time.Duration, len(sched))
		for w := 0; w < opts.MaxInflight; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for off := range jobs {
					execOne(off)
				}
			}()
		}
	}

	// The dispatcher walks the precomputed schedule on the clock. It reads
	// nothing from completions — that independence is what makes the loop
	// open.
	cancelled := false
	for _, off := range sched {
		if ctx.Err() != nil {
			skipped.Add(1)
			cancelled = true
			continue
		}
		if wait := t0.Add(off).Sub(now()); wait > 0 {
			sleep(wait)
		}
		if opts.MaxInflight > 0 {
			jobs <- off
		} else {
			wg.Add(1)
			go func(off time.Duration) {
				defer wg.Done()
				execOne(off)
			}(off)
		}
	}
	if jobs != nil {
		close(jobs)
	}
	wg.Wait()

	st.Dispatched = int(dispatched.Load())
	st.Skipped = int(skipped.Load())
	st.Errors = int(errs.Load())
	st.Elapsed = time.Duration(endNs.Load())
	if st.Elapsed <= 0 {
		st.Elapsed = now().Sub(t0)
	}
	if span := max(st.Elapsed, st.Window); span > 0 {
		st.Achieved = float64(st.Dispatched-st.Errors) / span.Seconds()
	}
	st.Latency = summarize(&latHist)
	st.Service = summarize(&svcHist)
	st.Wait = summarize(&waitHist)
	if cancelled {
		return st, fmt.Errorf("loadgen: cancelled after %d/%d operations: %w",
			st.Dispatched, st.Scheduled, ctx.Err())
	}
	return st, nil
}

// runIsolated invokes op with panic isolation, so one exploding operation
// is an error in the stats rather than a crashed load generator.
func runIsolated(ctx context.Context, op func(context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("loadgen: operation panicked: %v", r)
		}
	}()
	return op(ctx)
}

// sleepContext is the default sleeper. Plain time.Sleep is fine here: the
// dispatcher re-checks the context before every dispatch, and scheduling
// gaps are bounded by the window.
func sleepContext(d time.Duration) { time.Sleep(d) }
