package loadgen

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/stats"
)

// The operation labels loadgen records into the metrics pipeline. OpRequest
// is the headline number: latency measured from the *intended* start, so
// queueing behind a stalled operation is charged to the requests that
// waited (the coordinated-omission guard). OpService and OpWait decompose
// it into execution time and queueing delay. All three are recorded as
// substrate-level observations: each operation is a whole workload
// execution that measures its own user-level operations into the same
// collector, so counting requests at the user level too would double-count
// Result.Throughput. The per-request digests live in Stats.
const (
	OpRequest = "request"
	OpService = "request_service"
	OpWait    = "request_wait"
)

// Options configures one open-loop run.
type Options struct {
	// Rate is the mean offered load in operations per second (> 0).
	Rate float64
	// Arrival is the arrival process; nil means Constant.
	Arrival Process
	// Duration is the scheduling window (> 0). Operations scheduled inside
	// the window may complete after it; the run waits for them.
	Duration time.Duration
	// Seed derives the arrival schedule (see Schedule).
	Seed uint64
	// MaxInflight caps concurrently executing operations. Zero means
	// unbounded — the pure open-loop model, where dispatch never waits for
	// capacity. A positive cap queues excess arrivals; their waiting time
	// still counts against OpRequest, because the clock starts at the
	// intended arrival either way.
	MaxInflight int
	// Rec, when non-nil, receives every observation in the sharded metrics
	// pipeline: OpRequest, OpService and OpWait, all substrate-level (the
	// executed operations record their own user-level measurements).
	Rec metrics.Recorder

	// ShardIndex and ShardCount slice the materialized schedule for
	// distributed load generation: the run dispatches only arrivals whose
	// schedule index j satisfies j % ShardCount == ShardIndex, keeping their
	// absolute offsets, so N shards driving the same (rate, seed) offer
	// together exactly the single-process schedule (see ShardSchedule).
	// ShardCount 0 or 1 keeps the whole schedule.
	ShardIndex int
	ShardCount int

	// Now and Sleep are injectable for tests; nil means the real clock.
	// Sleep receives the run's context and must return early when it is
	// cancelled, so shutdown is never delayed by a pacing sleep.
	Now   func() time.Time
	Sleep func(context.Context, time.Duration)
}

// LatencySummary is one latency distribution digest.
type LatencySummary struct {
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean"`
	P50   time.Duration `json:"p50"`
	P95   time.Duration `json:"p95"`
	P99   time.Duration `json:"p99"`
	Max   time.Duration `json:"max"`
}

func summarize(h *stats.AtomicLatencyHistogram) LatencySummary {
	s := h.Snapshot()
	if s.Count() == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Count: s.Count(),
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		Max:   s.Max(),
	}
}

// Stats is the outcome of one open-loop run: how much load was offered, how
// much the system absorbed, and what the latency looked like from the
// user's side (intended start) versus the server's side (actual start).
type Stats struct {
	// Arrival is the process name and Offered the configured mean rate.
	Arrival string  `json:"arrival"`
	Offered float64 `json:"offered"`
	// Window is the configured scheduling window; Elapsed the wall time from
	// the first intended arrival to the last completion.
	Window  time.Duration `json:"window"`
	Elapsed time.Duration `json:"elapsed"`
	// Scheduled counts the arrivals in the schedule; Dispatched the ones
	// that began executing; Skipped the ones abandoned to a cancelled
	// context; Errors the dispatched ones whose operation returned an error.
	Scheduled  int `json:"scheduled"`
	Dispatched int `json:"dispatched"`
	Skipped    int `json:"skipped,omitempty"`
	Errors     int `json:"errors,omitempty"`
	// Achieved is the completion rate actually sustained: successful
	// completions per second over the scheduling window (or over Elapsed
	// when completions overran the window). It tracks Offered while the
	// system keeps up and falls below it past the saturation knee.
	Achieved float64 `json:"achieved"`
	// Latency is measured from each operation's intended start (queueing
	// included — immune to coordinated omission); Service from its actual
	// start; Wait is the gap between the two.
	Latency LatencySummary `json:"latency"`
	Service LatencySummary `json:"service"`
	Wait    LatencySummary `json:"wait"`
}

// runState is one open-loop run's dispatch machinery, hoisted out of Run
// so that every per-operation cost is paid once at construction: the
// schedule is materialized up front, the histograms are plain fields, the
// metric handles are pre-resolved OpRefs, and workers are goroutines that
// range over one shared handoff channel. The steady-state dispatch path —
// hand an offset to a parked worker, execute, observe — performs zero heap
// allocations (asserted by TestDispatchSteadyStateZeroAlloc and gated in
// CI via BenchmarkDispatchSteadyState).
type runState struct {
	ctx context.Context
	op  func(context.Context) error
	now func() time.Time
	t0  time.Time

	latHist, svcHist, waitHist stats.AtomicLatencyHistogram
	reqRef, svcRef, waitRef    metrics.OpRef

	dispatched, skipped, errs atomic.Int64
	endNs                     atomic.Int64 // latest completion, ns offset from t0

	wg sync.WaitGroup
	// ready carries intended-start offsets to workers. Unbounded mode uses
	// an unbuffered channel: a send succeeds only by direct handoff to a
	// parked worker, and the dispatcher spawns a new worker exactly when no
	// idle one exists — peak concurrency costs one goroutine each, steady
	// state reuses them all. Bounded mode (MaxInflight) buffers the whole
	// schedule so the dispatcher never blocks while excess arrivals queue.
	ready chan time.Duration
}

// newRunState builds the dispatch machinery for one run. now is the clock
// (t0 is read from it immediately); rec mirrors observations into the
// sharded metrics pipeline and may be nil.
func newRunState(ctx context.Context, op func(context.Context) error, rec metrics.Recorder, now func() time.Time, buffered int) *runState {
	r := &runState{ctx: ctx, op: op, now: now}
	subRec := metrics.SubstrateShardOf(rec)
	r.reqRef = metrics.OpRefOf(subRec, OpRequest)
	r.svcRef = metrics.OpRefOf(subRec, OpService)
	r.waitRef = metrics.OpRefOf(subRec, OpWait)
	r.ready = make(chan time.Duration, buffered)
	r.t0 = now()
	return r
}

// dispatch hands one intended-start offset to a worker. In unbounded mode
// it spawns a worker only when none is parked on the handoff channel, so
// the op starts immediately without a per-operation goroutine in steady
// state.
func (r *runState) dispatch(off time.Duration, bounded bool) {
	if bounded {
		r.ready <- off // buffered with the whole schedule: never blocks
		return
	}
	select {
	case r.ready <- off: // direct handoff to an idle worker
	default:
		r.spawnWorker()
		r.ready <- off
	}
}

// spawnWorker adds one reusable executor goroutine.
func (r *runState) spawnWorker() {
	r.wg.Add(1)
	go r.worker()
}

// worker executes offsets until the schedule is exhausted.
func (r *runState) worker() {
	defer r.wg.Done()
	for off := range r.ready {
		r.execOne(off)
	}
}

// execOne runs one operation and records its three latency views. This is
// the per-operation hot path: zero allocations in steady state
// (TestDispatchSteadyStateZeroAlloc at runtime, bdvet's hotpath analyzer
// statically).
//
//bdbench:hotpath
func (r *runState) execOne(offset time.Duration) {
	if r.ctx.Err() != nil {
		r.skipped.Add(1)
		return
	}
	r.dispatched.Add(1)
	intended := r.t0.Add(offset)
	actual := r.now()
	err := runIsolated(r.ctx, r.op)
	end := r.now()

	wait := actual.Sub(intended)
	if wait < 0 {
		wait = 0
	}
	lat := end.Sub(intended)
	svc := end.Sub(actual)
	r.latHist.Observe(lat)
	r.svcHist.Observe(svc)
	r.waitHist.Observe(wait)
	r.reqRef.Observe(lat)
	r.svcRef.Observe(svc)
	r.waitRef.Observe(wait)
	if err != nil {
		r.errs.Add(1)
	}
	for {
		cur := r.endNs.Load()
		if ns := int64(end.Sub(r.t0)); ns > cur {
			if !r.endNs.CompareAndSwap(cur, ns) {
				continue
			}
		}
		break
	}
}

// Run offers the configured load to op: it materializes the arrival
// schedule, dispatches each operation at its intended start time — never
// waiting for earlier completions — and waits for every dispatched
// operation to finish. Operation errors and panics are counted, not fatal;
// the error return is reserved for an invalid Options or a context
// cancelled before the window completes.
func Run(ctx context.Context, opts Options, op func(context.Context) error) (Stats, error) {
	if opts.Rate <= 0 {
		return Stats{}, fmt.Errorf("loadgen: rate must be positive, got %g", opts.Rate)
	}
	if opts.Duration <= 0 {
		return Stats{}, fmt.Errorf("loadgen: duration must be positive, got %v", opts.Duration)
	}
	proc := opts.Arrival
	if proc == nil {
		proc = Constant{}
	}
	now := opts.Now
	if now == nil {
		now = time.Now //bdvet:allow detnondet -- production default for the Options.Now clock seam; determinism tests inject a virtual clock
	}

	sched := Schedule(proc, opts.Rate, opts.Duration, opts.Seed)
	if opts.ShardCount < 0 || opts.ShardIndex < 0 ||
		(opts.ShardCount <= 1 && opts.ShardIndex != 0) ||
		(opts.ShardCount > 1 && opts.ShardIndex >= opts.ShardCount) {
		return Stats{}, fmt.Errorf("loadgen: shard %d/%d out of range", opts.ShardIndex, opts.ShardCount)
	}
	if opts.ShardCount > 1 {
		sched = ShardSchedule(sched, opts.ShardIndex, opts.ShardCount)
	}
	st := Stats{
		Arrival:   proc.Name(),
		Offered:   opts.Rate,
		Window:    opts.Duration,
		Scheduled: len(sched),
	}

	bounded := opts.MaxInflight > 0
	buffered := 0
	if bounded {
		// Arrivals past the cap queue (with the queueing time still charged
		// from their intended start). The channel holds the whole schedule,
		// so the dispatcher itself never blocks on capacity.
		buffered = len(sched)
	}
	r := newRunState(ctx, op, opts.Rec, now, buffered)
	if bounded {
		for w := 0; w < opts.MaxInflight; w++ {
			r.spawnWorker()
		}
	}

	// The dispatcher walks the precomputed schedule on the clock. It reads
	// nothing from completions — that independence is what makes the loop
	// open. One pacing timer is reused across every sleep, so pacing
	// produces no per-arrival garbage and honors cancellation.
	var timer *time.Timer
	cancelled := false
	for _, off := range sched {
		if ctx.Err() != nil {
			r.skipped.Add(1)
			cancelled = true
			continue
		}
		if wait := r.t0.Add(off).Sub(now()); wait > 0 {
			if opts.Sleep != nil {
				opts.Sleep(ctx, wait)
			} else {
				timer = sleepContext(ctx, timer, wait)
			}
		}
		r.dispatch(off, bounded)
	}
	close(r.ready)
	r.wg.Wait()

	st.Dispatched = int(r.dispatched.Load())
	st.Skipped = int(r.skipped.Load())
	st.Errors = int(r.errs.Load())
	st.Elapsed = time.Duration(r.endNs.Load())
	if st.Elapsed <= 0 {
		st.Elapsed = now().Sub(r.t0)
	}
	if span := max(st.Elapsed, st.Window); span > 0 {
		st.Achieved = float64(st.Dispatched-st.Errors) / span.Seconds()
	}
	st.Latency = summarize(&r.latHist)
	st.Service = summarize(&r.svcHist)
	st.Wait = summarize(&r.waitHist)
	if cancelled {
		return st, fmt.Errorf("loadgen: cancelled after %d/%d operations: %w",
			st.Dispatched, st.Scheduled, ctx.Err())
	}
	return st, nil
}

// ShardSchedule returns the sub-schedule shard (index, count) dispatches:
// every count-th arrival starting at the index-th, with absolute offsets
// preserved. The shards of a schedule partition it exactly — the union of
// all count sub-schedules, in offset order, is the full schedule — so
// distributed load generation offers the same intended start times as one
// process would, just from several dispatchers. count <= 1 returns the
// schedule unchanged.
func ShardSchedule(sched []time.Duration, index, count int) []time.Duration {
	if count <= 1 {
		return sched
	}
	out := make([]time.Duration, 0, max(0, (len(sched)-index+count-1)/count))
	for j := index; j < len(sched); j += count {
		out = append(out, sched[j])
	}
	return out
}

// runIsolated invokes op with panic isolation, so one exploding operation
// is an error in the stats rather than a crashed load generator.
func runIsolated(ctx context.Context, op func(context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("loadgen: operation panicked: %v", r)
		}
	}()
	return op(ctx)
}

// sleepContext pauses for d or until ctx is cancelled, whichever comes
// first — a pacing sleep must never delay shutdown. The timer is reused
// across calls (pass nil on the first, the return value thereafter), so a
// high-rate dispatch loop produces no per-sleep timer garbage. Requires the
// go1.23+ timer semantics go.mod declares: Reset without draining is safe.
func sleepContext(ctx context.Context, timer *time.Timer, d time.Duration) *time.Timer {
	if timer == nil {
		timer = time.NewTimer(d)
	} else {
		timer.Reset(d)
	}
	select {
	case <-timer.C:
	case <-ctx.Done():
		timer.Stop()
	}
	return timer
}
