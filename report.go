package bdbench

import (
	"fmt"
	"strings"

	"github.com/bdbench/bdbench/internal/report"
	"github.com/bdbench/bdbench/internal/scenario"
)

// Reporter renders a scenario Outcome in one output format. Implement it
// to plug a custom exporter into the CLI-style flow; the built-ins cover
// aligned text, markdown and JSON.
type Reporter = scenario.Reporter

// NewTextReporter renders results as aligned-text tables with a
// per-category summary.
func NewTextReporter() Reporter { return report.TextReporter{} }

// NewMarkdownReporter renders results as GitHub-flavored markdown.
func NewMarkdownReporter() Reporter { return report.MarkdownReporter{} }

// NewJSONReporter exports the full outcome as indented JSON.
func NewJSONReporter() Reporter { return report.JSONReporter{} }

// ReporterFor maps a format name to its reporter.
func ReporterFor(format string) (Reporter, error) {
	for _, r := range Reporters() {
		if r.Format() == format {
			return r, nil
		}
	}
	return nil, fmt.Errorf("bdbench: unknown format %q (have: %s)", format, strings.Join(Formats(), ", "))
}

// Reporters returns the built-in reporters.
func Reporters() []Reporter {
	return []Reporter{NewTextReporter(), NewMarkdownReporter(), NewJSONReporter()}
}

// Formats lists the built-in reporter format names.
func Formats() []string {
	rs := Reporters()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Format()
	}
	return out
}

// FormatResults renders measurement snapshots — with the dominant
// operation's latency percentiles — as an aligned-text table.
func FormatResults(results []Result) string {
	return report.Table([]string{"workload", "elapsed", "ops/s", "p50", "p99"}, report.ResultRows(results))
}

// AlignedTable renders rows under headers with aligned columns.
func AlignedTable(headers []string, rows [][]string) string {
	return report.Table(headers, rows)
}

// BarChart renders labeled values as a horizontal ASCII bar chart scaled
// to width characters.
func BarChart(labels []string, values []float64, width int) string {
	return report.BarChart(labels, values, width)
}

// Series is one named data series for line-style figures.
type Series = report.Series

// FormatSeries renders a series as a two-column table.
func FormatSeries(s Series) string { return report.FormatSeries(s) }

// LoadCurve is a workload's throughput-vs-latency curve: one open-loop run
// per offered rate. Build it by sweeping Run with WithLoad over increasing
// rates (or use the CLI's loadcurve command) and render it with
// FormatLoadCurve.
type LoadCurve = report.LoadCurve

// LoadPoint is one point of a LoadCurve: offered vs achieved rate plus the
// latency percentiles measured from intended start at that rate.
type LoadPoint = report.LoadPoint

// LoadPointFrom digests one open-loop run's statistics (a
// WorkloadResult.Load) into a curve point.
func LoadPointFrom(st *LoadStats) LoadPoint { return report.PointFromStats(st) }

// FormatLoadCurve renders a load curve in the named format: "text",
// "markdown" or "json".
func FormatLoadCurve(c LoadCurve, format string) (string, error) { return c.Render(format) }
