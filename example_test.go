package bdbench_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	bdbench "github.com/bdbench/bdbench"
)

// evenCount is a custom workload an external caller might write: it
// "processes" a deterministic record stream on no particular stack and
// records counters and latencies like any built-in workload.
type evenCount struct{}

func (evenCount) Name() string                    { return "even-count" }
func (evenCount) Category() bdbench.Category      { return bdbench.Online }
func (evenCount) Domain() string                  { return "example" }
func (evenCount) StackTypes() []bdbench.StackType { return []bdbench.StackType{bdbench.StackNoSQL} }
func (evenCount) Run(ctx context.Context, p bdbench.Params, c *bdbench.Collector) error {
	evens := 0
	for i := 0; i < 100*p.Scale; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.Timed("check", func() {
			if i%2 == 0 {
				evens++
			}
		})
	}
	c.Add("evens", int64(evens))
	c.Add("records", int64(100*p.Scale))
	return nil
}

// ExampleRun demonstrates the whole public flow: register a custom
// workload, compose a scenario mixing it with a built-in suite's
// inventory, run it on the concurrent engine, and export the outcome with
// a reporter.
func ExampleRun() {
	// Register: the custom workload joins the default registry next to the
	// built-in inventory.
	if err := bdbench.Register(evenCount{}); err != nil {
		fmt.Println("register:", err)
		return
	}

	// Compose: one entry picks a workload out of a suite, the other
	// selects the custom workload with a per-entry scale override.
	scenario := bdbench.Scenario{
		Name: "example",
		Entries: []bdbench.Entry{
			{Suite: "GridMix", Workload: "sort"},
			{Workload: "even-count", Scale: 3},
		},
		Seed: 7,
	}

	// Run: workload outputs are seed-deterministic at any parallelism.
	out, err := bdbench.Run(context.Background(), scenario)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	for _, r := range out.Results {
		fmt.Printf("%s (%s) ok=%v\n", r.Workload, r.Category, r.Err == nil)
	}
	fmt.Println("evens counted:", out.Results[1].Result.Counters["evens"])

	// Export: any reporter renders the same outcome.
	var buf bytes.Buffer
	if err := bdbench.NewJSONReporter().Report(&buf, out); err != nil {
		fmt.Println("report:", err)
		return
	}
	fmt.Println("custom workload exported:", strings.Contains(buf.String(), `"workload": "even-count"`))

	// Output:
	// sort (online services) ok=true
	// even-count (online services) ok=true
	// evens counted: 150
	// custom workload exported: true
}
