package bdbench_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"time"

	bdbench "github.com/bdbench/bdbench"
)

// evenCount is a custom workload an external caller might write: it
// "processes" a deterministic record stream on no particular stack and
// records counters and latencies like any built-in workload.
type evenCount struct{}

func (evenCount) Name() string                    { return "even-count" }
func (evenCount) Category() bdbench.Category      { return bdbench.Online }
func (evenCount) Domain() string                  { return "example" }
func (evenCount) StackTypes() []bdbench.StackType { return []bdbench.StackType{bdbench.StackNoSQL} }
func (evenCount) Run(ctx context.Context, p bdbench.Params, c *bdbench.Collector) error {
	evens := 0
	for i := 0; i < 100*p.Scale; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.Timed("check", func() {
			if i%2 == 0 {
				evens++
			}
		})
	}
	c.Add("evens", int64(evens))
	c.Add("records", int64(100*p.Scale))
	return nil
}

// ExampleRun demonstrates the whole public flow: register a custom
// workload, compose a scenario mixing it with a built-in suite's
// inventory, run it on the concurrent engine, and export the outcome with
// a reporter.
func ExampleRun() {
	// Register: the custom workload joins the default registry next to the
	// built-in inventory.
	if err := bdbench.Register(evenCount{}); err != nil {
		fmt.Println("register:", err)
		return
	}

	// Compose: one entry picks a workload out of a suite, the other
	// selects the custom workload with a per-entry scale override.
	scenario := bdbench.Scenario{
		Name: "example",
		Entries: []bdbench.Entry{
			{Suite: "GridMix", Workload: "sort"},
			{Workload: "even-count", Scale: 3},
		},
		Seed: 7,
	}

	// Run: workload outputs are seed-deterministic at any parallelism.
	out, err := bdbench.Run(context.Background(), scenario)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	for _, r := range out.Results {
		fmt.Printf("%s (%s) ok=%v\n", r.Workload, r.Category, r.Err == nil)
	}
	fmt.Println("evens counted:", out.Results[1].Result.Counters["evens"])

	// Export: any reporter renders the same outcome.
	var buf bytes.Buffer
	if err := bdbench.NewJSONReporter().Report(&buf, out); err != nil {
		fmt.Println("report:", err)
		return
	}
	fmt.Println("custom workload exported:", strings.Contains(buf.String(), `"workload": "even-count"`))

	// Output:
	// sort (online services) ok=true
	// even-count (online services) ok=true
	// evens counted: 150
	// custom workload exported: true
}

// ExampleRun_underLoad demonstrates open-loop load generation: the same
// scenario machinery, but executions are dispatched at a controlled
// offered rate with Poisson arrivals and latency is measured from each
// operation's intended start — so queueing under overload is visible in
// the percentiles instead of being hidden by coordinated omission.
// Sweeping WithLoad across rates and collecting LoadPointFrom per run
// yields a LoadCurve (the CLI's `bdbench loadcurve` does exactly this).
func ExampleRun_underLoad() {
	scenario := bdbench.Scenario{
		Name:    "latency under load",
		Entries: []bdbench.Entry{{Workload: "grep"}},
		Seed:    7,
	}
	out, err := bdbench.Run(context.Background(), scenario,
		bdbench.WithLoad(200, 100*time.Millisecond),
		bdbench.WithArrival("poisson"),
	)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	st := out.Results[0].Load
	// Wall-clock latencies vary run to run; the schedule does not: the
	// same seed, rate and window always offer the identical load.
	fmt.Printf("arrival=%s offered=%g/s window=%v\n", st.Arrival, st.Offered, st.Window)
	fmt.Println("all dispatched:", st.Dispatched == st.Scheduled && st.Scheduled > 0)
	fmt.Println("latencies measured:", st.Latency.Count == uint64(st.Dispatched))

	// Output:
	// arrival=poisson offered=200/s window=100ms
	// all dispatched: true
	// latencies measured: true
}
