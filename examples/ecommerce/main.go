// The ecommerce example walks the e-commerce application domain: generate
// the orders fact table, derive web logs from it (BigBench-style), answer
// business questions in SQL on the DBMS substrate, and produce
// recommendations with item-based collaborative filtering.
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/bdbench/bdbench/internal/datagen/tablegen"
	"github.com/bdbench/bdbench/internal/datagen/weblog"
	"github.com/bdbench/bdbench/internal/stacks/dbms"
	"github.com/bdbench/bdbench/internal/stats"
	"github.com/bdbench/bdbench/internal/workloads/commerce"
)

func main() {
	// 1. Structured data: the orders table.
	orders := tablegen.ReferenceTable(7, 20000)

	// 2. Semi-structured data derived from it: the click log.
	logs, err := weblog.Generator{}.FromTable(stats.NewRNG(8), orders, 5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d orders and %d log lines\n", orders.NumRows(), len(logs))

	// 3. SQL analytics on the DBMS substrate.
	db := dbms.Open()
	if err := db.Load(orders); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateIndex("orders", "customer_id"); err != nil {
		log.Fatal(err)
	}
	revenue, err := db.Query(
		"SELECT region, sum(price) AS revenue, count(*) AS n FROM orders GROUP BY region ORDER BY revenue DESC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrevenue by region:")
	for _, row := range revenue.Rows {
		fmt.Printf("  %-6s $%12.2f  (%d orders)\n", row[0].Str(), row[1].Float(), row[2].Int())
	}
	express, err := db.Query("SELECT count(*) FROM orders WHERE express = true AND region = 'eu'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("express EU orders: %d\n", express.Rows[0][0].Int())

	// 4. Recommendations: item-based CF over a rating matrix.
	g := stats.NewRNG(9)
	ratings := commerce.GenerateRatings(g, 2000, 80, 12)
	vecs := make([]map[int]float64, 80)
	for i := range vecs {
		vecs[i] = map[int]float64{}
	}
	for _, r := range ratings {
		vecs[r.Item][r.User] = r.Score
	}
	norms := make([]float64, 80)
	for i, v := range vecs {
		s := 0.0
		for _, x := range v {
			s += x * x
		}
		norms[i] = math.Sqrt(s)
	}
	sim := func(a, b int) float64 {
		if norms[a] == 0 || norms[b] == 0 {
			return 0
		}
		dot := 0.0
		for u, x := range vecs[a] {
			if y, ok := vecs[b][u]; ok {
				dot += x * y
			}
		}
		return dot / (norms[a] * norms[b])
	}
	fmt.Println("\ntop recommendations for product 3:")
	for _, item := range commerce.TopNRecommend(sim, 80, 3, 5) {
		fmt.Printf("  product %2d (similarity %.3f)\n", item, sim(3, item))
	}

	// Sanity: the recommendations stay within product 3's taste group.
	inGroup := 0
	for _, item := range commerce.TopNRecommend(sim, 80, 3, 5) {
		if item/20 == 3/20 {
			inGroup++
		}
	}
	fmt.Printf("%d/5 recommendations within the planted taste group\n", inGroup)
}
