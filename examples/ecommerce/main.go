// The ecommerce example walks the e-commerce application domain: generate
// the orders fact table, derive web logs from it (BigBench-style), answer
// business questions in SQL on the DBMS substrate, and produce
// recommendations with the registered collaborative-filtering workload via
// the public API.
//
//	go run ./examples/ecommerce
package main

import (
	"context"
	"fmt"
	"log"

	bdbench "github.com/bdbench/bdbench"
	"github.com/bdbench/bdbench/datagen"
	"github.com/bdbench/bdbench/datagen/tablegen"
	"github.com/bdbench/bdbench/datagen/weblog"
	"github.com/bdbench/bdbench/stacks/dbms"
)

func main() {
	// 1. Structured data: the orders table.
	orders := tablegen.ReferenceTable(7, 20000)

	// 2. Semi-structured data derived from it: the click log.
	logs, err := weblog.Generator{}.FromTable(datagen.NewRNG(8), orders, 5000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d orders and %d log lines\n", orders.NumRows(), len(logs))

	// 3. SQL analytics on the DBMS substrate.
	db := dbms.Open()
	if err := db.Load(orders); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateIndex("orders", "customer_id"); err != nil {
		log.Fatal(err)
	}
	revenue, err := db.Query(
		"SELECT region, sum(price) AS revenue, count(*) AS n FROM orders GROUP BY region ORDER BY revenue DESC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrevenue by region:")
	for _, row := range revenue.Rows {
		fmt.Printf("  %-6s $%12.2f  (%d orders)\n", row[0].Str(), row[1].Float(), row[2].Int())
	}
	express, err := db.Query("SELECT count(*) FROM orders WHERE express = true AND region = 'eu'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("express EU orders: %d\n", express.Rows[0][0].Int())

	// 4. Recommendations: the registered collaborative-filtering workload
	// (item-based CF over a planted-taste rating matrix, verified
	// internally) selected by name through the public scenario API.
	out, err := bdbench.Run(context.Background(), bdbench.Scenario{
		Name:    "recommendations",
		Entries: []bdbench.Entry{{Workload: "collaborative-filtering"}},
		Seed:    9,
		Workers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	cf := out.Results[0].Result
	fmt.Println("\ncollaborative filtering:")
	fmt.Printf("  processed %d ratings at %.0f ops/s (domain: %s)\n",
		cf.Counters["records"], cf.Throughput, out.Results[0].Domain)
	for _, op := range cf.Ops {
		fmt.Printf("  %-12s n=%-6d mean=%v\n", op.Op, op.Count, op.Mean)
	}
}
