// The quickstart example runs one complete benchmarking pass: it builds a
// plan (Figure 1 step 1), lets bdbench generate data, generate tests,
// execute them on the simulated stacks, and prints the analyzed results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/bdbench/bdbench/internal/core"
	"github.com/bdbench/bdbench/internal/metrics"
)

func main() {
	out, err := core.Run(core.Plan{
		Object:  "quickstart: is my cluster's batch tier healthy?",
		Suite:   "GridMix", // small inventory: sort + sampling
		Scale:   1,
		Workers: 4,
		Seed:    2014,
		Energy:  metrics.DefaultEnergyModel,
		Cost:    metrics.DefaultCostModel,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("benchmarking process (Figure 1):")
	for _, s := range out.Steps {
		fmt.Printf("  %-24s %-50s %v\n", s.Step, s.Detail, s.Duration.Round(time.Millisecond))
	}

	fmt.Println("\nresults:")
	for _, r := range out.Results {
		fmt.Printf("  %-12s %-18s %10.0f ops/s  %8.1f J  $%.6f\n",
			r.Workload, r.Category, r.Result.Throughput,
			r.Result.EnergyJoules, r.Result.CostUSD)
	}
	fmt.Printf("\ndata veracity level of this suite's generators: %s\n", out.VeracityLevel())
}
