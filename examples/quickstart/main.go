// The quickstart example runs one complete benchmarking pass through the
// public bdbench API: declare a scenario (Figure 1 step 1), let bdbench
// generate data, generate tests, execute them on the simulated stacks, and
// print the analyzed results.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	bdbench "github.com/bdbench/bdbench"
)

func main() {
	scenario := bdbench.Scenario{
		Name:    "quickstart: is my cluster's batch tier healthy?",
		Entries: []bdbench.Entry{{Suite: "GridMix"}}, // small inventory: sort + sampling
		Scale:   1,
		Workers: 4,
		Seed:    2014,
		// Execution-engine settings: run workloads concurrently, take the
		// median of 3 repetitions after 1 warmup, cap each run at a minute.
		// The seed makes workload outputs identical at any Parallel
		// setting; only timings vary.
		Parallel: 4,
		Reps:     3,
		Warmup:   1,
		Timeout:  bdbench.Duration(time.Minute),
		Energy:   bdbench.DefaultEnergyModel,
		Cost:     bdbench.DefaultCostModel,
	}
	out, err := bdbench.Run(context.Background(), scenario, bdbench.WithDataProbes())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("benchmarking process (Figure 1):")
	for _, s := range out.Steps {
		fmt.Printf("  %-24s %-50s %v\n", s.Step, s.Detail, s.Duration.Round(time.Millisecond))
	}

	fmt.Println("\nresults (median of 3 repetitions):")
	for _, r := range out.Results {
		fmt.Printf("  %-12s %-18s %10.0f ops/s (±%.0f over %d reps)  %8.1f J  $%.6f\n",
			r.Workload, r.Category, r.Result.Throughput,
			r.Throughput.StdDev, len(r.Reps),
			r.Result.EnergyJoules, r.Result.CostUSD)
	}
	fmt.Printf("\ndata veracity level of this suite's generators: %s\n", out.VeracityLevel())
}
