// The socialnetwork example covers the social-network application domain:
// generate a preferential-attachment friendship graph, find communities'
// connected components on the BSP engine, cluster user embeddings with
// MapReduce k-means, and stream the activity feed through windowed counts.
//
//	go run ./examples/socialnetwork
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/bdbench/bdbench/internal/datagen/graphgen"
	"github.com/bdbench/bdbench/internal/datagen/streamgen"
	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/stacks/graphengine"
	"github.com/bdbench/bdbench/internal/stacks/streaming"
	"github.com/bdbench/bdbench/internal/stats"
	"github.com/bdbench/bdbench/internal/workloads"
	"github.com/bdbench/bdbench/internal/workloads/social"
)

func main() {
	// 1. The social graph: 2^12 users, preferential attachment.
	g := graphgen.BarabasiAlbert{M: 3}.Generate(stats.NewRNG(11), 12)
	fmt.Printf("social graph: %d users, %d friendships\n", g.N, g.NumEdges())
	hubs := g.TopDegreeVertices(3)
	fmt.Printf("most-followed users: %v\n", hubs)

	// 2. Communities: connected components on the BSP engine.
	und := graphengine.Undirected(g)
	res, err := graphengine.New(8).Run(und, graphengine.ConnectedComponents{}, 100)
	if err != nil {
		log.Fatal(err)
	}
	labels := map[float64]int{}
	for _, v := range res.Values {
		labels[v]++
	}
	fmt.Printf("communities: %d (BA graphs are connected, so expect 1)\n", len(labels))

	// 3. User clustering: the k-means workload (iterated MapReduce).
	c := metrics.NewCollector("kmeans")
	if err := (social.KMeans{K: 4, Iterations: 8}).Run(context.Background(), workloads.Params{Seed: 12, Scale: 2, Workers: 8}, c); err != nil {
		log.Fatal(err)
	}
	c.SetElapsed(time.Second)
	fmt.Printf("k-means: clustered %d user embeddings in %d iterations\n",
		c.Counter("records"), c.Counter("iterations"))

	// 4. The activity stream: zipf-skewed events through a tumbling window.
	gen := streamgen.Generator{
		EventsPerSec: 20000,
		KeySpace:     int64(g.N),
		KeyChooser:   stats.Zipf{Count: g.N, S: 1.2},
	}
	events := gen.Generate(stats.NewRNG(13), 40000)
	eng := streaming.New(512)
	out := eng.Run(events, streaming.TumblingWindow{Size: 500 * time.Millisecond})
	fmt.Printf("activity stream: %d events -> %d windowed per-user counts at %.0f ev/s\n",
		len(events), len(out.Out), out.Rate)

	// The hottest user in the stream should be one of the zipf head keys.
	var maxCount float64
	var hottest string
	for _, m := range out.Out {
		if m.Value > maxCount {
			maxCount, hottest = m.Value, m.Key
		}
	}
	fmt.Printf("hottest user in any window: %s (%d events)\n", hottest, int(maxCount))
}
