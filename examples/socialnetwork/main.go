// The socialnetwork example covers the social-network application domain:
// generate a preferential-attachment friendship graph, find communities'
// connected components on the BSP engine, cluster user embeddings with the
// registered k-means workload via the public API, and stream the activity
// feed through windowed counts.
//
//	go run ./examples/socialnetwork
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	bdbench "github.com/bdbench/bdbench"
	"github.com/bdbench/bdbench/datagen"
	"github.com/bdbench/bdbench/datagen/graphgen"
	"github.com/bdbench/bdbench/datagen/streamgen"
	"github.com/bdbench/bdbench/stacks/graphengine"
	"github.com/bdbench/bdbench/stacks/streaming"
)

func main() {
	// 1. The social graph: 2^12 users, preferential attachment.
	g := graphgen.BarabasiAlbert{M: 3}.Generate(datagen.NewRNG(11), 12)
	fmt.Printf("social graph: %d users, %d friendships\n", g.N, g.NumEdges())
	hubs := g.TopDegreeVertices(3)
	fmt.Printf("most-followed users: %v\n", hubs)

	// 2. Communities: connected components on the BSP engine.
	und := graphengine.Undirected(g)
	res, err := graphengine.New(8).Run(und, graphengine.ConnectedComponents{}, 100)
	if err != nil {
		log.Fatal(err)
	}
	labels := map[float64]int{}
	for _, v := range res.Values {
		labels[v]++
	}
	fmt.Printf("communities: %d (BA graphs are connected, so expect 1)\n", len(labels))

	// 3. User clustering: the registered k-means workload (iterated
	// MapReduce) selected by name through the public scenario API.
	out, err := bdbench.Run(context.Background(), bdbench.Scenario{
		Name:    "user clustering",
		Entries: []bdbench.Entry{{Workload: "kmeans"}},
		Seed:    12,
		Scale:   2,
		Workers: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	km := out.Results[0].Result
	fmt.Printf("k-means: clustered %d user embeddings in %d iterations\n",
		km.Counters["records"], km.Counters["iterations"])

	// 4. The activity stream: zipf-skewed events through a tumbling window.
	gen := streamgen.Generator{
		EventsPerSec: 20000,
		KeySpace:     int64(g.N),
		KeyChooser:   datagen.Zipf{Count: g.N, S: 1.2},
	}
	events := gen.Generate(datagen.NewRNG(13), 40000)
	eng := streaming.New(512)
	sOut := eng.Run(events, streaming.TumblingWindow{Size: 500 * time.Millisecond})
	fmt.Printf("activity stream: %d events -> %d windowed per-user counts at %.0f ev/s\n",
		len(events), len(sOut.Out), sOut.Rate)

	// The hottest user in the stream should be one of the zipf head keys.
	var maxCount float64
	var hottest string
	for _, m := range sOut.Out {
		if m.Value > maxCount {
			maxCount, hottest = m.Value, m.Key
		}
	}
	fmt.Printf("hottest user in any window: %s (%d events)\n", hottest, int(maxCount))
}
