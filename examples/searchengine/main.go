// The searchengine example exercises the search-engine application domain
// end to end on the public facades: generate a document corpus with the
// LDA model, build an inverted index with a MapReduce job, rank a
// hyperlink graph with PageRank on the BSP engine, and answer a query by
// combining both.
//
//	go run ./examples/searchengine
package main

import (
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"github.com/bdbench/bdbench/datagen"
	"github.com/bdbench/bdbench/datagen/graphgen"
	"github.com/bdbench/bdbench/datagen/textgen"
	"github.com/bdbench/bdbench/stacks/graphengine"
	"github.com/bdbench/bdbench/stacks/mapreduce"
)

func main() {
	const nDocs = 1 << 10

	// 1. Text data: learn from the "real" corpus, then synthesize pages.
	raw := textgen.ReferenceCorpus(1, 200, 60)
	lda := textgen.NewLDA(4, 0, 0)
	if err := lda.Train(raw, 25, datagen.NewRNG(2)); err != nil {
		log.Fatal(err)
	}
	pages, err := lda.Generate(datagen.NewRNG(3), nDocs, 50)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build the inverted index as a MapReduce job.
	input := make([]mapreduce.KV, len(pages))
	for i, d := range pages {
		input[i] = mapreduce.KV{Key: strconv.Itoa(i), Value: strings.Join(d, " ")}
	}
	eng := mapreduce.New(8)
	indexOut, st, err := eng.Run(mapreduce.Job{
		Name: "index",
		Map: func(docID, text string, emit func(k, v string)) {
			seen := map[string]bool{}
			for _, w := range strings.Fields(text) {
				if !seen[w] {
					emit(w, docID)
					seen[w] = true
				}
			}
		},
		Reduce: func(word string, docs []string, emit func(k, v string)) {
			emit(word, strings.Join(docs, ","))
		},
	}, input)
	if err != nil {
		log.Fatal(err)
	}
	index := make(map[string][]string, len(indexOut))
	for _, kv := range indexOut {
		index[kv.Key] = strings.Split(kv.Value, ",")
	}
	fmt.Printf("indexed %d pages, %d terms (%d bytes shuffled)\n", nDocs, len(index), st.ShuffleBytes)

	// 3. Rank the link graph (RMAT web graph over the same page ids).
	g := graphgen.DefaultRMAT.Generate(datagen.NewRNG(4), 10) // 2^10 pages
	res, err := graphengine.New(8).Run(g, graphengine.PageRank{}, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pagerank: %d supersteps, %d messages\n", res.Supersteps, res.MessagesSent)

	// 4. Query: lexical match filtered through rank ordering.
	query := "data storage"
	candidates := map[string]bool{}
	for i, term := range strings.Fields(query) {
		postings := index[term]
		if i == 0 {
			for _, d := range postings {
				candidates[d] = true
			}
			continue
		}
		next := map[string]bool{}
		for _, d := range postings {
			if candidates[d] {
				next[d] = true
			}
		}
		candidates = next
	}
	type hit struct {
		doc  int
		rank float64
	}
	var hits []hit
	for d := range candidates {
		id, _ := strconv.Atoi(d)
		if id < int(g.N) {
			hits = append(hits, hit{doc: id, rank: res.Values[id]})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].rank > hits[j].rank })
	fmt.Printf("query %q matched %d pages; top results by rank:\n", query, len(hits))
	for i, h := range hits {
		if i == 5 {
			break
		}
		fmt.Printf("  page %4d  rank %.4f\n", h.doc, h.rank)
	}
}
