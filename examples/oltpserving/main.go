// The oltpserving example drives the cloud-serving (OLTP) domain: it loads
// the NoSQL store, runs YCSB workloads A and B with concurrent clients, and
// prints the latency profile — then shows the same abstract read/write test
// executing on both the NoSQL store and the DBMS (the paper's system view).
//
//	go run ./examples/oltpserving
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/testgen"
	"github.com/bdbench/bdbench/internal/workloads"
	"github.com/bdbench/bdbench/internal/workloads/oltp"
)

func main() {
	// YCSB A (update-heavy) and B (read-mostly).
	for _, w := range []oltp.CoreWorkload{oltp.WorkloadA, oltp.WorkloadB} {
		c := metrics.NewCollector(w.Name())
		t0 := time.Now()
		if err := w.Run(context.Background(), workloads.Params{Seed: 21, Scale: 1, Workers: 8}, c); err != nil {
			log.Fatal(err)
		}
		c.SetElapsed(time.Since(t0))
		r := c.Snapshot()
		fmt.Printf("%s: %.0f ops/s\n", r.Name, r.Throughput)
		for _, op := range r.Ops {
			if op.Op == "load" {
				continue
			}
			fmt.Printf("  %-7s n=%-7d p50=%-10v p99=%v\n", op.Op, op.Count, op.P50, op.P99)
		}
	}

	// The same abstract point-operation test on two different stack types.
	fmt.Println("\nabstract db-point-ops prescription across stacks (functional view):")
	repo := testgen.NewRepository()
	p, err := repo.Get("db-point-ops")
	if err != nil {
		log.Fatal(err)
	}
	reg := testgen.NewRegistry()
	for name, factory := range testgen.DefaultExecutors(4) {
		c := metrics.NewCollector(name)
		out, err := testgen.RunOn(factory(), p, reg, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s -> %d record(s), value %q\n", name, len(out), out[0].Value)
	}
}
