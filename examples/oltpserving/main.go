// The oltpserving example drives the cloud-serving (OLTP) domain through
// the public API: it selects YCSB workloads A and B from the registry and
// runs them with concurrent clients, prints the latency profile — then
// registers a *custom* workload built from an abstract db-point-ops
// prescription on two different stacks (the paper's system view) and
// exports that run with the JSON reporter.
//
//	go run ./examples/oltpserving
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	bdbench "github.com/bdbench/bdbench"
)

func main() {
	// YCSB A (update-heavy) and B (read-mostly), selected by name.
	scenario := bdbench.Scenario{
		Name: "oltp serving",
		Entries: []bdbench.Entry{
			{Suite: "YCSB", Workload: "ycsb-A"},
			{Suite: "YCSB", Workload: "ycsb-B"},
		},
		Seed:    21,
		Scale:   1,
		Workers: 8,
	}
	out, err := bdbench.Run(context.Background(), scenario)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range out.Results {
		fmt.Printf("%s: %.0f ops/s\n", r.Workload, r.Result.Throughput)
		for _, op := range r.Result.Ops {
			if op.Op == "load" {
				continue
			}
			fmt.Printf("  %-7s n=%-7d p50=%-10v p99=%v\n", op.Op, op.Count, op.P50, op.P99)
		}
	}

	// The same abstract point-operation prescription as a custom workload
	// on two different stack types — registered in an isolated registry and
	// run through the same public entry point (functional view: both
	// produce the same outcome, only the latencies differ).
	fmt.Println("\nabstract db-point-ops prescription across stacks (functional view):")
	registry := bdbench.NewRegistry()
	for _, stack := range []string{"nosql", "dbms"} {
		w, err := bdbench.NewPrescriptionWorkload(bdbench.PrescriptionConfig{
			Name:         "point-ops@" + stack,
			Prescription: "db-point-ops",
			Stack:        stack,
			Domain:       "cloud OLTP",
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := registry.RegisterWorkload(w); err != nil {
			log.Fatal(err)
		}
	}
	custom := bdbench.Scenario{
		Name:    "custom prescription workloads",
		Entries: []bdbench.Entry{{Domain: "cloud OLTP"}},
		Seed:    4,
	}
	customOut, err := bdbench.Run(context.Background(), custom, bdbench.WithRegistry(registry))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range customOut.Results {
		fmt.Printf("  %-16s -> %d record(s)\n", r.Workload, r.Result.Counters["records"])
	}

	fmt.Println("\nJSON export of the custom-workload run:")
	if err := bdbench.NewJSONReporter().Report(os.Stdout, customOut); err != nil {
		log.Fatal(err)
	}
}
