// The datagen4v example demonstrates the 4V properties of bdbench's data
// generators one axis at a time via the public datagen facades: volume
// scaling, velocity control (rate, update frequency and processing speed),
// variety of data sources, and measured veracity across the three
// generator families.
//
//	go run ./examples/datagen4v
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/bdbench/bdbench/datagen"
	"github.com/bdbench/bdbench/datagen/media"
	"github.com/bdbench/bdbench/datagen/resume"
	"github.com/bdbench/bdbench/datagen/streamgen"
	"github.com/bdbench/bdbench/datagen/tablegen"
	"github.com/bdbench/bdbench/datagen/textgen"
	"github.com/bdbench/bdbench/datagen/veracity"
	"github.com/bdbench/bdbench/datagen/weblog"
)

func main() {
	// ---- Volume: the same spec at three scale factors.
	fmt.Println("VOLUME — one spec, three scale factors:")
	spec := tablegen.ReferenceSpec(1)
	for _, sf := range []int64{1000, 10000, 100000} {
		t0 := time.Now()
		tab := spec.GenerateParallel(sf, 8)
		fmt.Printf("  %7d rows in %8v\n", tab.NumRows(), time.Since(t0).Round(time.Millisecond))
	}

	// ---- Velocity: generation rate, update frequency, processing speed.
	fmt.Println("\nVELOCITY — three meanings (§2.1):")
	bucket := datagen.NewTokenBucket(5000, 50)
	probe := datagen.NewRateProbe()
	for i := 0; i < 2500; i++ {
		bucket.Take(1)
		probe.Add(1)
	}
	fmt.Printf("  generation rate: target 5000/s, achieved %.0f/s\n", probe.Rate())

	gen := streamgen.Generator{EventsPerSec: 100000, Mix: streamgen.Mix{UpdateFraction: 0.25, DeleteFraction: 0.05}}
	events := gen.Generate(datagen.NewRNG(2), 20000)
	updates := 0
	for _, e := range events {
		if e.Kind == streamgen.OpUpdate {
			updates++
		}
	}
	fmt.Printf("  update frequency: target 25%%, achieved %.1f%%\n", 100*float64(updates)/float64(len(events)))

	rate := streamgen.MeasureProcessingSpeed(events, func(streamgen.Event) {})
	fmt.Printf("  processing speed: %.0f events/s sustained\n", rate)

	// ---- Variety: every supported source kind.
	fmt.Println("\nVARIETY — data sources:")
	corpus := textgen.ReferenceCorpus(3, 50, 40)
	fmt.Printf("  text:    %d documents (unstructured)\n", len(corpus))
	orders := tablegen.ReferenceTable(3, 500)
	fmt.Printf("  table:   %d rows x %d cols (structured)\n", orders.NumRows(), len(orders.Schema.Cols))
	logs, err := weblog.Generator{}.FromTable(datagen.NewRNG(4), orders, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  weblog:  %d lines (semi-structured, derived from tables)\n", len(logs))
	resumes := resume.Generator{}.Generate(datagen.NewRNG(5), 100)
	fmt.Printf("  resume:  %d records (semi-structured)\n", len(resumes))
	blobs := media.Library(datagen.NewRNG(6), 20, 30)
	totalBytes := 0
	for _, b := range blobs {
		totalBytes += len(b)
	}
	fmt.Printf("  video:   %d blobs, %d bytes (unstructured binary)\n", len(blobs), totalBytes)

	// ---- Veracity: measured divergence per generator family.
	fmt.Println("\nVERACITY — measured KL divergence from the real corpus:")
	raw := textgen.ReferenceCorpus(7, 150, 60)
	vocab := textgen.BuildVocabulary(raw)
	score := func(c textgen.Corpus) float64 {
		r, err := veracity.Text(raw, c)
		if err != nil {
			log.Fatal(err)
		}
		return r.Score()
	}
	random := textgen.RandomText{Dictionary: vocab.Words()}.Generate(datagen.NewRNG(8), 150, 60)
	fmt.Printf("  random text (HiBench-style):      %.4f\n", score(random))
	markov := textgen.NewMarkov(1)
	if err := markov.Train(raw); err != nil {
		log.Fatal(err)
	}
	mk, err := markov.Generate(datagen.NewRNG(9), 150, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  markov chain:                     %.4f\n", score(mk))
	lda := textgen.NewLDA(4, 0, 0)
	if err := lda.Train(raw, 30, datagen.NewRNG(10)); err != nil {
		log.Fatal(err)
	}
	ld, err := lda.Generate(datagen.NewRNG(11), 150, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  LDA (BigDataBench-style):         %.4f\n", score(ld))
}
