package bdbench

import (
	"context"
	"net/http"

	"github.com/bdbench/bdbench/internal/cluster"
)

// Distributed mode: a coordinator partitions a scenario's resolved tasks
// across agents and merges their results into the same Outcome — and, with
// CoordinateOptions.RunOutput, the same run-blob bytes — a single process
// would produce for a deterministic (spec, seed). See docs/DISTRIBUTED.md
// for the wire protocol, partitioning rules and failure semantics.

// AgentOptions configures a benchmark agent.
type AgentOptions = cluster.AgentOptions

// CoordinateOptions configures a coordinated distributed run: the agent
// fleet, the failure policy (retries, backoff, per-shard and heartbeat
// timeouts), and the usual scenario options.
type CoordinateOptions = cluster.Options

// ServeAgent runs a benchmark agent on addr until ctx is cancelled, then
// shuts down gracefully (in-flight shards get a bounded drain). Agents are
// stateless between requests; one agent can serve any number of
// coordinators.
func ServeAgent(ctx context.Context, addr string, opts AgentOptions) error {
	if opts.ToolVersion == "" {
		opts.ToolVersion = Version
	}
	return cluster.ServeAgent(ctx, addr, opts)
}

// AgentHandler returns the agent's HTTP handler without binding a listener
// — the embedding point for callers that already run an HTTP server (and
// for httptest-based fault injection).
func AgentHandler(opts AgentOptions) http.Handler {
	if opts.ToolVersion == "" {
		opts.ToolVersion = Version
	}
	return cluster.NewAgent(opts).Handler()
}

// Coordinate executes the scenario with its Execution step distributed
// across opts.Agents: tasks are partitioned into shards (global task index
// i mod shard count), dispatched over the wire protocol with retry and
// backoff, and reassembled in task order before the ordinary analysis and
// artifact encoding. A shard no agent can complete makes the run degraded —
// its tasks report failed and Outcome.Degraded (and the blob's metadata)
// says why — rather than hanging or silently dropping work.
func Coordinate(ctx context.Context, s Scenario, opts CoordinateOptions) (*Outcome, error) {
	if opts.ToolVersion == "" {
		opts.ToolVersion = Version
	}
	return cluster.Coordinate(ctx, s, opts)
}
