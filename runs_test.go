package bdbench_test

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	bdbench "github.com/bdbench/bdbench"
)

// TestRunArtifactRoundTrip is the tentpole's acceptance path end to end: a
// run written with WithRunOutput, read back with ReadRun, re-rendered by
// every reporter — and each re-render must match the live run's report byte
// for byte.
func TestRunArtifactRoundTrip(t *testing.T) {
	reg := bdbench.NewRegistry()
	if err := reg.RegisterWorkload(evenCount{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.blob")
	sc := bdbench.Scenario{Name: "roundtrip", Entries: []bdbench.Entry{{Workload: "even-count"}}, Seed: 3, Scale: 2}
	out, err := bdbench.Run(context.Background(), sc,
		bdbench.WithRegistry(reg),
		bdbench.WithRunOutput(path),
	)
	if err != nil {
		t.Fatal(err)
	}

	run, err := bdbench.ReadRun(path)
	if err != nil {
		t.Fatalf("ReadRun: %v", err)
	}
	if run.Meta.Seed != 3 || run.Meta.Name != "roundtrip" {
		t.Fatalf("meta: %+v", run.Meta)
	}
	wantDigest, err := bdbench.SpecDigest(sc)
	if err != nil {
		t.Fatal(err)
	}
	if run.Meta.SpecDigest != wantDigest {
		t.Fatalf("spec digest %q, want %q", run.Meta.SpecDigest, wantDigest)
	}
	if len(run.Series) == 0 {
		t.Fatal("artifact carries no latency streams")
	}

	for _, format := range bdbench.Formats() {
		rep, err := bdbench.ReporterFor(format)
		if err != nil {
			t.Fatal(err)
		}
		var live, saved bytes.Buffer
		if err := rep.Report(&live, out); err != nil {
			t.Fatalf("%s live: %v", format, err)
		}
		if err := bdbench.RenderRun(&saved, run, format); err != nil {
			t.Fatalf("%s saved: %v", format, err)
		}
		if live.String() != saved.String() {
			t.Errorf("%s: re-rendered artifact diverges from live report\nlive:\n%s\nsaved:\n%s",
				format, live.String(), saved.String())
		}
	}
}

// TestCompareRunsThroughPublicAPI: same-seed self-comparison is clean; an
// injected +30%% value shift is flagged with a regressed verdict.
func TestCompareRunsThroughPublicAPI(t *testing.T) {
	reg := bdbench.NewRegistry()
	if err := reg.RegisterWorkload(evenCount{}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "a.blob"), filepath.Join(dir, "b.blob")}
	sc := bdbench.Scenario{Name: "cmp", Entries: []bdbench.Entry{{Workload: "even-count"}}, Seed: 7}
	for _, p := range paths {
		if _, err := bdbench.Run(context.Background(), sc,
			bdbench.WithRegistry(reg), bdbench.WithRunOutput(p)); err != nil {
			t.Fatal(err)
		}
	}
	a, err := bdbench.ReadRun(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := bdbench.ReadRun(paths[1])
	if err != nil {
		t.Fatal(err)
	}

	// Same seed, same spec: generous thresholds make self-comparison clean
	// even on a noisy machine.
	cmp := bdbench.CompareRuns(a, b, bdbench.CompareOptions{LatencyThreshold: 10, ThroughputThreshold: 0.99})
	if !cmp.SpecMatch || !cmp.SeedMatch {
		t.Fatalf("same-seed runs: SpecMatch=%v SeedMatch=%v", cmp.SpecMatch, cmp.SeedMatch)
	}
	if cmp.Verdict == bdbench.VerdictRegressed {
		t.Fatalf("self-comparison regressed: %+v", cmp)
	}

	// Inject a +30% shift into a copy of run a and compare against the
	// original: the two sides differ only by the synthetic shift, so the
	// verdict is deterministic.
	shifted, err := bdbench.ReadRun(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range shifted.Series {
		for j := range shifted.Series[i].Samples {
			shifted.Series[i].Samples[j].Value = shifted.Series[i].Samples[j].Value * 13 / 10
		}
	}
	cmp = bdbench.CompareRuns(a, shifted, bdbench.CompareOptions{LatencyThreshold: 0.15})
	if cmp.Verdict != bdbench.VerdictRegressed {
		t.Fatal("+30% shift not flagged")
	}
	if cmp.Err() == nil {
		t.Fatal("Err() nil on regression")
	}
	text, err := bdbench.FormatComparison(cmp, "text")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "regressed") {
		t.Errorf("text comparison missing verdict:\n%s", text)
	}
}

// TestReadRunRejectsGarbage: the public reader surfaces decode errors.
func TestReadRunRejectsGarbage(t *testing.T) {
	if _, err := bdbench.ReadRun(filepath.Join(t.TempDir(), "missing.blob")); err == nil {
		t.Fatal("missing file read cleanly")
	}
}
