package bdbench

import (
	"fmt"
	"os"

	"github.com/bdbench/bdbench/internal/scenario"
)

// Scenario is a declarative, JSON-round-trippable benchmark spec: what to
// run (Entries composing workloads across any suites) and how to run it
// (scale, seed, engine settings, open-loop load settings, metric models).
// Zero "how" fields mean "default"; Normalized fills defaults exactly once
// and Validate rejects everything else, reporting the normalized values a
// run would use. The full field-by-field reference lives in
// docs/SCENARIO.md.
type Scenario = scenario.Spec

// Entry is one selection of a scenario: pick workloads from a suite's
// inventory or the registry at large, narrowed by name, category, domain
// or stack, with optional per-entry scale/workers/seed/reps and
// rate/arrival/duration overrides.
type Entry = scenario.Entry

// Duration is a time.Duration that round-trips through JSON as a string
// like "30s".
type Duration = scenario.Duration

// ParseScenario decodes a JSON scenario spec. Unknown fields are errors,
// so typos in spec files surface instead of silently selecting nothing.
func ParseScenario(raw []byte) (Scenario, error) { return scenario.Parse(raw) }

// LoadScenario reads and parses a scenario spec file.
func LoadScenario(path string) (Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("bdbench: scenario file: %w", err)
	}
	return scenario.Parse(raw)
}

// SuiteScenario is the common case as a one-liner: a scenario selecting
// one whole suite inventory.
func SuiteScenario(suite string) Scenario {
	return Scenario{Name: suite, Entries: []Entry{{Suite: suite}}}
}
