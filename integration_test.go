package bdbench_test

import (
	"context"
	"strings"
	"testing"
	"time"

	bdbench "github.com/bdbench/bdbench"
	"github.com/bdbench/bdbench/internal/core"
	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/suites"
	"github.com/bdbench/bdbench/internal/testgen"
	"github.com/bdbench/bdbench/internal/workloads"
)

func TestVersion(t *testing.T) {
	if bdbench.Version == "" {
		t.Fatal("empty version")
	}
}

// TestEndToEndBenchmarkingProcess exercises the full pipeline the paper
// describes: plan, generate data, generate tests, execute on simulated
// stacks, analyze — for a suite that touches multiple stack types.
func TestEndToEndBenchmarkingProcess(t *testing.T) {
	out, err := core.Run(core.Plan{
		Object:  "integration",
		Suite:   "CloudSuite", // NoSQL + Hadoop + text classification
		Scale:   1,
		Workers: 2,
		Seed:    99,
		Energy:  metrics.DefaultEnergyModel,
		Cost:    metrics.DefaultCostModel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("results %d, want 4 (CloudSuite inventory)", len(out.Results))
	}
	if len(out.Summary) != 2 {
		t.Fatalf("summary categories %d, want 2 (online + offline)", len(out.Summary))
	}
	if got := out.VeracityLevel(); got != "Partially Considered" {
		t.Fatalf("CloudSuite veracity %s", got)
	}
}

// TestTable1EndToEnd re-derives Table 1 with a different probe seed than
// the unit tests use: the classification must be seed-independent.
func TestTable1EndToEnd(t *testing.T) {
	rows, err := suites.DeriveTable1(123456)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := suites.CompareToPaper(rows); len(diffs) != 0 {
		t.Fatalf("Table 1 derivation is seed-sensitive:\n  %s", strings.Join(diffs, "\n  "))
	}
}

// TestPrescriptionAcrossStacksEndToEnd runs a user-authored prescription
// (not a built-in) through the Figure 4 pipeline on every stack.
func TestPrescriptionAcrossStacksEndToEnd(t *testing.T) {
	pl := testgen.NewPipeline()
	tests, err := pl.Generate(
		testgen.DataSpec{Source: "pairs", Size: 800, Seed: 321, SecondSize: 200},
		[]testgen.Step{
			{Op: "join", UseSecond: true},
			{Op: "distinct"},
			{Op: "count"},
		},
		testgen.MultiPattern, "", 0,
		testgen.DefaultExecutors(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	results, err := testgen.VerifyPortability(tests[0].Prescription, pl.Registry, testgen.DefaultExecutors(2))
	if err != nil {
		t.Fatal(err)
	}
	ref := results["reference"]
	if len(ref) != 1 || ref[0].Key != "count" {
		t.Fatalf("unexpected reference outcome %v", ref)
	}
}

// TestAllSuitesExecutableSmoke runs the two cheapest workloads of every
// suite to confirm each emulation is wired to real, working runners.
func TestAllSuitesExecutableSmoke(t *testing.T) {
	for _, s := range suites.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			ran := 0
			for _, row := range s.Rows {
				for _, w := range row.Runners {
					if ran == 2 {
						return
					}
					c := metrics.NewCollector(w.Name())
					if err := w.Run(context.Background(), workloads.Params{Seed: 55, Scale: 1, Workers: 2}, c); err != nil {
						t.Fatalf("%s/%s: %v", s.Name, w.Name(), err)
					}
					ran++
				}
			}
		})
	}
}

// TestConcurrentEngineEndToEnd runs the five-step process through the
// concurrent execution engine with repetitions and a deadline, and checks
// the per-repetition results agree with a sequential single-rep run of the
// same plan (seeded determinism across scheduling).
func TestConcurrentEngineEndToEnd(t *testing.T) {
	plan := core.Plan{
		Object:   "engine integration",
		Suite:    "GridMix",
		Scale:    1,
		Workers:  2,
		Seed:     123,
		Parallel: 8,
		Reps:     2,
		Timeout:  2 * time.Minute,
	}
	concurrent, err := core.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	plan.Parallel, plan.Reps = 1, 1
	sequential, err := core.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(concurrent.Results) != len(sequential.Results) {
		t.Fatalf("result counts %d vs %d", len(concurrent.Results), len(sequential.Results))
	}
	for i := range concurrent.Results {
		cr, sr := concurrent.Results[i], sequential.Results[i]
		if cr.Workload != sr.Workload {
			t.Fatalf("order differs at %d: %s vs %s", i, cr.Workload, sr.Workload)
		}
		if len(cr.Reps) != 2 {
			t.Fatalf("%s: reps %d, want 2", cr.Workload, len(cr.Reps))
		}
		for k, v := range sr.Result.Counters {
			if cr.Result.Counters[k] != v {
				t.Fatalf("%s: counter %s differs between engine and sequential run: %d vs %d",
					cr.Workload, k, cr.Result.Counters[k], v)
			}
		}
	}
}
