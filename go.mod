module github.com/bdbench/bdbench

go 1.23

// The module deliberately has no dependencies — including
// golang.org/x/tools: the bdvet analyzer suite (internal/lint,
// cmd/bdvet) follows the go/analysis model but is built on the standard
// library's go/* packages alone, so `go build ./...` and `make lint`
// work offline with nothing to fetch. See docs/LINT.md.
