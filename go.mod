module github.com/bdbench/bdbench

go 1.23
