// Benchmarks regenerating every table and figure of "On Big Data
// Benchmarking", plus the quantitative experiments of DESIGN.md and
// microbenchmarks of the substrates. Run with:
//
//	go test -bench=. -benchmem
package bdbench_test

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/bdbench/bdbench/internal/core"
	"github.com/bdbench/bdbench/internal/datagen/graphgen"
	"github.com/bdbench/bdbench/internal/datagen/streamgen"
	"github.com/bdbench/bdbench/internal/datagen/tablegen"
	"github.com/bdbench/bdbench/internal/datagen/textgen"
	"github.com/bdbench/bdbench/internal/datagen/veracity"
	"github.com/bdbench/bdbench/internal/engine"
	"github.com/bdbench/bdbench/internal/metrics"
	"github.com/bdbench/bdbench/internal/stacks/dbms"
	"github.com/bdbench/bdbench/internal/stacks/graphengine"
	"github.com/bdbench/bdbench/internal/stacks/mapreduce"
	"github.com/bdbench/bdbench/internal/stacks/nosql"
	"github.com/bdbench/bdbench/internal/stacks/streaming"
	"github.com/bdbench/bdbench/internal/stats"
	"github.com/bdbench/bdbench/internal/suites"
	"github.com/bdbench/bdbench/internal/testgen"
	"github.com/bdbench/bdbench/internal/workloads"
	"github.com/bdbench/bdbench/internal/workloads/oltp"
	"github.com/bdbench/bdbench/internal/workloads/relational"
	"github.com/bdbench/bdbench/internal/workloads/social"
	"github.com/bdbench/bdbench/internal/workloads/streamwl"
)

// ---- E5: Table 1 ----

// BenchmarkTable1DataGeneration derives the full Table 1 (volume, velocity,
// variety, veracity probes over all eleven suites).
func BenchmarkTable1DataGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := suites.DeriveTable1(900)
		if err != nil {
			b.Fatal(err)
		}
		if diffs := suites.CompareToPaper(rows); len(diffs) != 0 {
			b.Fatalf("disagrees with paper: %v", diffs)
		}
	}
}

// ---- E6: Table 2 ----

// BenchmarkTable2Workloads executes one representative suite inventory per
// iteration (GridMix: the smallest full row of Table 2).
func BenchmarkTable2Workloads(b *testing.B) {
	suite, _ := suites.ByName("GridMix")
	for i := 0; i < b.N; i++ {
		results := suites.RunSuite(suite, workloads.Params{Seed: 1, Scale: 1, Workers: 4})
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkSuiteEngineParallelism compares sequential execution (one
// engine worker) against the concurrent engine at full parallelism on one
// suite inventory — the speedup the execution layer buys. Results are
// seed-identical in both modes.
func BenchmarkSuiteEngineParallelism(b *testing.B) {
	suite, _ := suites.ByName("CloudSuite")
	p := workloads.Params{Seed: 1, Scale: 1, Workers: 2}
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{fmt.Sprintf("engine-%dworkers", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0)},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results := suites.RunSuiteEngine(context.Background(), suite, p, engine.Config{Workers: mode.workers})
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(len(suite.Workloads())*b.N)/b.Elapsed().Seconds(), "workloads/s")
		})
	}
}

// ---- E1: Figure 1 ----

// BenchmarkFigure1Process runs the five-step benchmarking process.
func BenchmarkFigure1Process(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := core.Run(core.Plan{Object: "bench", Suite: "GridMix", Scale: 1, Workers: 4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Steps) != 5 {
			b.Fatal("process did not execute five steps")
		}
	}
}

// ---- E2: Figure 2 ----

// BenchmarkFigure2Architecture renders the layered architecture; it mostly
// documents that the figure is an executable artifact.
func BenchmarkFigure2Architecture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.FormatArchitecture(core.Architecture())) == 0 {
			b.Fatal("empty architecture")
		}
	}
}

// ---- E3: Figure 3 ----

// BenchmarkFigure3DataGeneration runs the four-step data generation process
// for the text data type.
func BenchmarkFigure3DataGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := core.TextDataGenProcess(1, 300, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Steps) != 4 {
			b.Fatal("process did not execute four steps")
		}
	}
}

// ---- E4: Figure 4 ----

// BenchmarkFigure4TestGeneration runs the five-step test generation process
// and the cross-stack portability check.
func BenchmarkFigure4TestGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pl := testgen.NewPipeline()
		tests, err := pl.Generate(
			testgen.DataSpec{Source: "words", Size: 1000, Seed: 4},
			[]testgen.Step{{Op: "select", Arg: "data"}, {Op: "count"}},
			testgen.MultiPattern, "", 0,
			testgen.DefaultExecutors(4),
		)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := testgen.VerifyPortability(tests[0].Prescription, pl.Registry, testgen.DefaultExecutors(4)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E7: velocity via parallel generation ----

// BenchmarkVelocityParallelScaling measures table generation rate as the
// worker count doubles (the paper's parallel-deployment velocity knob).
func BenchmarkVelocityParallelScaling(b *testing.B) {
	spec := tablegen.ReferenceSpec(1)
	spec.ChunkSize = 1024
	maxW := runtime.GOMAXPROCS(0)
	for w := 1; w <= maxW; w *= 2 {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tab := spec.GenerateParallel(50_000, w)
				if tab.NumRows() != 50_000 {
					b.Fatal("wrong row count")
				}
			}
			b.ReportMetric(float64(50_000*b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// ---- E8: velocity via algorithm efficiency (§5.1) ----

// BenchmarkVelocityAlgorithmKnob compares the BA generator's memory-heavy
// (fast) and memory-light (slow) modes.
func BenchmarkVelocityAlgorithmKnob(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    graphgen.MemoryMode
	}{{"memory-heavy", graphgen.MemoryHeavy}, {"memory-light", graphgen.MemoryLight}} {
		b.Run(mode.name, func(b *testing.B) {
			gen := graphgen.BarabasiAlbert{M: 4, Mode: mode.m}
			var edges int
			for i := 0; i < b.N; i++ {
				g := gen.Generate(stats.NewRNG(2), 12)
				edges = g.NumEdges()
			}
			b.ReportMetric(float64(edges*b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// ---- E9: veracity metrics ----

// BenchmarkVeracityMetrics measures the cost of the §5.1 veracity
// comparison for each data type.
func BenchmarkVeracityMetrics(b *testing.B) {
	rawText := textgen.ReferenceCorpus(1, 150, 60)
	synText := textgen.ReferenceCorpus(2, 150, 60)
	rawTab := tablegen.ReferenceTable(3, 4000)
	synTab := tablegen.ReferenceTable(4, 4000)
	rawG := graphgen.DefaultRMAT.Generate(stats.NewRNG(5), 11)
	synG := graphgen.DefaultRMAT.Generate(stats.NewRNG(6), 11)
	b.Run("text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := veracity.Text(rawText, synText); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := veracity.Table(rawTab, synTab, 32); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("graph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := veracity.Graph(rawG, synG); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E10: abstract test portability ----

// BenchmarkAbstractTestPortability runs the same prescription on each stack
// type separately so their costs are directly comparable.
func BenchmarkAbstractTestPortability(b *testing.B) {
	reg := testgen.NewRegistry()
	repo := testgen.NewRepository()
	p, err := repo.Get("select-count")
	if err != nil {
		b.Fatal(err)
	}
	for name, factory := range testgen.DefaultExecutors(4) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := metrics.NewCollector(name)
				if _, err := testgen.RunOn(factory(), p, reg, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E11: YCSB ----

// BenchmarkYCSBWorkloads runs each core workload A-F.
func BenchmarkYCSBWorkloads(b *testing.B) {
	for _, w := range oltp.All() {
		b.Run(w.Label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := metrics.NewCollector(w.Name())
				if err := w.Run(context.Background(), workloads.Params{Seed: 6, Scale: 1, Workers: 4}, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E12: Pavlo comparison ----

// BenchmarkPavloComparison runs the select/aggregate/join task set on the
// DBMS and on MapReduce; the DBMS should win at this (indexed, small) scale.
func BenchmarkPavloComparison(b *testing.B) {
	b.Run("dbms", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := metrics.NewCollector("dbms")
			if err := (relational.LoadSelectAggregateJoin{}).Run(context.Background(), workloads.Params{Seed: 7, Scale: 1, Workers: 4}, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mapreduce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := metrics.NewCollector("mr")
			if err := (relational.MapReduceEquivalents{}).Run(context.Background(), workloads.Params{Seed: 7, Scale: 1, Workers: 4}, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E13: workload categories ----

// BenchmarkWorkloadCategories runs one representative workload per §4.2
// category.
func BenchmarkWorkloadCategories(b *testing.B) {
	reps := []struct {
		name string
		w    workloads.Workload
	}{
		{"online-ycsbC", oltp.WorkloadC},
		{"offline-kmeans", social.KMeans{}},
		{"realtime-windowed", streamwl.WindowedCount{}},
	}
	for _, rep := range reps {
		b.Run(rep.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := metrics.NewCollector(rep.name)
				if err := rep.w.Run(context.Background(), workloads.Params{Seed: 8, Scale: 1, Workers: 4}, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E14: metrics pipeline scalability ----

// mutexCollector replicates the pre-shard Collector design — every
// observation serializes through one mutex — as the baseline the sharded
// pipeline is measured against.
type mutexCollector struct {
	mu       sync.Mutex
	lat      map[string]*stats.LatencyHistogram
	counters map[string]int64
}

func newMutexCollector() *mutexCollector {
	return &mutexCollector{lat: map[string]*stats.LatencyHistogram{}, counters: map[string]int64{}}
}

func (c *mutexCollector) ObserveLatency(op string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.lat[op]
	if !ok {
		h = &stats.LatencyHistogram{}
		c.lat[op] = h
	}
	h.Observe(d)
}

func (c *mutexCollector) Add(counter string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counters[counter] += delta
}

// benchObservers drives `goroutines` concurrent recorders (one minted per
// goroutine) through an observe+count loop and reports the aggregate
// recording rate.
func benchObservers(b *testing.B, goroutines int, mint func() metrics.Recorder) {
	per := b.N/goroutines + 1
	var wg sync.WaitGroup
	// The record path is zero-allocation once a label exists; the allocs/op
	// column proves it (the fixed goroutine-spawn cost amortizes to zero
	// over b.N) and benchdiff gates it against the baseline.
	b.ReportAllocs()
	b.ResetTimer()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := mint()
			d := time.Microsecond
			for i := 0; i < per; i++ {
				rec.ObserveLatency("op", d)
				rec.Add("records", 1)
			}
		}()
	}
	wg.Wait()
	b.ReportMetric(float64(per*goroutines)/b.Elapsed().Seconds(), "obs/s")
}

// BenchmarkCollectorParallel is the acceptance benchmark for the sharded
// pipeline: 8 goroutines observing concurrently through (a) the old
// single-mutex design, (b) the collector facade (all writers on the shared
// default shard, lock-free but contended), and (c) private shards. The
// sharded variant must deliver materially more obs/s than the mutex
// baseline.
func BenchmarkCollectorParallel(b *testing.B) {
	const goroutines = 8
	b.Run("global-mutex", func(b *testing.B) {
		c := newMutexCollector()
		benchObservers(b, goroutines, func() metrics.Recorder { return c })
	})
	b.Run("facade-shared-shard", func(b *testing.B) {
		c := metrics.NewCollector("bench")
		benchObservers(b, goroutines, func() metrics.Recorder { return c })
	})
	b.Run("sharded", func(b *testing.B) {
		c := metrics.NewCollector("bench")
		benchObservers(b, goroutines, func() metrics.Recorder { return c.Shard() })
		if c.Counter("records") == 0 {
			b.Fatal("shard writes lost")
		}
	})
}

// BenchmarkCollectorShardScaling shows recording throughput scaling with
// the writer count when each writer holds a private shard.
func BenchmarkCollectorShardScaling(b *testing.B) {
	maxW := runtime.GOMAXPROCS(0)
	for w := 1; w <= maxW; w *= 2 {
		b.Run(fmt.Sprintf("writers-%d", w), func(b *testing.B) {
			c := metrics.NewCollector("bench")
			benchObservers(b, w, func() metrics.Recorder { return c.Shard() })
		})
	}
}

// BenchmarkYCSBClientScaling runs workload A end to end as the stack client
// count doubles: the per-operation measurement path is sharded per client
// (plus the store's per-partition shards), so measured op throughput can
// scale with the clients instead of re-serializing on a collector lock.
func BenchmarkYCSBClientScaling(b *testing.B) {
	maxW := runtime.GOMAXPROCS(0)
	for w := 1; w <= maxW; w *= 2 {
		b.Run(fmt.Sprintf("clients-%d", w), func(b *testing.B) {
			var ops uint64
			for i := 0; i < b.N; i++ {
				c := metrics.NewCollector(oltp.WorkloadA.Name())
				if err := oltp.WorkloadA.Run(context.Background(),
					workloads.Params{Seed: 9, Scale: 1, Workers: w}, c); err != nil {
					b.Fatal(err)
				}
				c.Stop()
				for _, op := range c.Snapshot().Ops {
					if !op.Substrate { // count each logical op once, not its kv_* echo
						ops += op.Count
					}
				}
			}
			b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// ---- Substrate microbenchmarks (ablation-level) ----

// BenchmarkMapReduceWordCount measures the MapReduce engine on the
// canonical job, with and without the combiner (the ablation DESIGN.md
// calls out for shuffle volume).
func BenchmarkMapReduceWordCount(b *testing.B) {
	g := stats.NewRNG(1)
	dict := textgen.DefaultDictionary()
	input := make([]mapreduce.KV, 5000)
	for i := range input {
		var sb strings.Builder
		for w := 0; w < 10; w++ {
			sb.WriteString(dict[g.IntN(len(dict))])
			sb.WriteByte(' ')
		}
		input[i] = mapreduce.KV{Key: strconv.Itoa(i), Value: sb.String()}
	}
	job := mapreduce.Job{
		Name: "wc",
		Map: func(_, v string, emit func(k, v string)) {
			for _, w := range strings.Fields(v) {
				emit(w, "1")
			}
		},
		Reduce: func(k string, vs []string, emit func(k, v string)) {
			emit(k, strconv.Itoa(len(vs)))
		},
	}
	eng := mapreduce.New(4)
	b.Run("no-combiner", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Run(job, input); err != nil {
				b.Fatal(err)
			}
		}
	})
	withComb := job
	withComb.Combine = job.Reduce
	b.Run("with-combiner", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Run(withComb, input); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDBMSQueries measures indexed point lookups, aggregation and
// joins on the relational substrate.
func BenchmarkDBMSQueries(b *testing.B) {
	db := dbms.Open()
	if err := db.Load(tablegen.ReferenceTable(1, 20000)); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateIndex("orders", "order_id"); err != nil {
		b.Fatal(err)
	}
	b.Run("point-select-indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := fmt.Sprintf("SELECT price FROM orders WHERE order_id = %d", i%20000+1)
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("group-by", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query("SELECT region, sum(price) AS s FROM orders GROUP BY region"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNoSQLOps measures raw store operation latencies.
func BenchmarkNoSQLOps(b *testing.B) {
	store := nosql.Open(8, 1)
	g := stats.NewRNG(2)
	for i := 0; i < 100000; i++ {
		store.Insert(fmt.Sprintf("user%012d", i), nosql.Record{"f": "v"})
	}
	b.Run("read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := store.Read(fmt.Sprintf("user%012d", g.IntN(100000)), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan-100", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			store.Scan(fmt.Sprintf("user%012d", g.IntN(100000)), 100)
		}
	})
}

// BenchmarkStreamingWindow measures the streaming engine's sustained rate.
func BenchmarkStreamingWindow(b *testing.B) {
	gen := streamgen.Generator{EventsPerSec: 100000, KeySpace: 100}
	events := gen.Generate(stats.NewRNG(3), 50000)
	eng := streaming.New(1024)
	for i := 0; i < b.N; i++ {
		res := eng.Run(events, streaming.TumblingWindow{Size: 100_000_000})
		if res.In != 50000 {
			b.Fatal("lost events")
		}
	}
	b.ReportMetric(float64(50000*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkGraphPageRank measures the BSP engine on an RMAT graph.
func BenchmarkGraphPageRank(b *testing.B) {
	g := graphgen.DefaultRMAT.Generate(stats.NewRNG(4), 12)
	eng := graphengine.New(4)
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(g, graphengine.PageRank{}, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLDATraining measures model fitting, the costly step of the
// Figure 3 pipeline.
func BenchmarkLDATraining(b *testing.B) {
	corpus := textgen.ReferenceCorpus(5, 150, 60)
	for i := 0; i < b.N; i++ {
		lda := textgen.NewLDA(4, 0, 0)
		if err := lda.Train(corpus, 20, stats.NewRNG(6)); err != nil {
			b.Fatal(err)
		}
	}
}
