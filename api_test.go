package bdbench_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	bdbench "github.com/bdbench/bdbench"
)

// TestCustomWorkloadThroughPublicAPI is the external-caller path end to
// end: an isolated registry, a custom workload, a run through bdbench.Run
// and its appearance in the JSON reporter's output.
func TestCustomWorkloadThroughPublicAPI(t *testing.T) {
	reg := bdbench.NewRegistry()
	if err := reg.RegisterWorkload(evenCount{}); err != nil {
		t.Fatal(err)
	}
	events := 0
	out, err := bdbench.Run(context.Background(),
		bdbench.Scenario{Entries: []bdbench.Entry{{Workload: "even-count"}}, Seed: 3, Scale: 2},
		bdbench.WithRegistry(reg),
		bdbench.WithEvents(func(bdbench.Event) { events++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Results[0].Result.Counters["evens"]; got != 100 {
		t.Fatalf("evens %d, want deterministic 100", got)
	}
	if events < 3 {
		t.Fatalf("events %d, want task-start/rep-done/task-done", events)
	}
	var buf bytes.Buffer
	if err := bdbench.NewJSONReporter().Report(&buf, out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"workload": "even-count"`) {
		t.Fatalf("custom workload missing from JSON output:\n%s", buf.String())
	}
}

// TestLoadThroughPublicAPI drives a custom workload open-loop with
// WithLoad/WithArrival and checks the latency-under-load surfaces: the
// LoadStats digest on the result, the curve-point conversion and the text
// reporter's load table.
func TestLoadThroughPublicAPI(t *testing.T) {
	reg := bdbench.NewRegistry()
	if err := reg.RegisterWorkload(evenCount{}); err != nil {
		t.Fatal(err)
	}
	out, err := bdbench.Run(context.Background(),
		bdbench.Scenario{Entries: []bdbench.Entry{{Workload: "even-count"}}, Seed: 3},
		bdbench.WithRegistry(reg),
		bdbench.WithLoad(100, 200*time.Millisecond),
		bdbench.WithArrival("poisson"),
	)
	if err != nil {
		t.Fatal(err)
	}
	st := out.Results[0].Load
	if st == nil {
		t.Fatal("open-loop run returned no LoadStats")
	}
	if st.Offered != 100 || st.Arrival != "poisson" || st.Window != 200*time.Millisecond {
		t.Fatalf("load settings lost: %+v", st)
	}
	if st.Dispatched == 0 || st.Latency.Count == 0 {
		t.Fatalf("no operations measured: %+v", st)
	}
	p := bdbench.LoadPointFrom(st)
	if p.Offered != 100 || p.Dispatched != st.Dispatched {
		t.Fatalf("curve point conversion lost data: %+v", p)
	}
	var buf bytes.Buffer
	if err := bdbench.NewTextReporter().Report(&buf, out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "latency under load") {
		t.Fatalf("text report missing load table:\n%s", buf.String())
	}
}

// TestArrivalsListed pins the public arrival-process names.
func TestArrivalsListed(t *testing.T) {
	got := strings.Join(bdbench.Arrivals(), ",")
	if got != "constant,poisson,bursty,ramp,replay" {
		t.Fatalf("Arrivals() = %s", got)
	}
}

// TestSampleScenarioSpec guards the checked-in spec file: it parses
// strictly, validates against the default registry, mixes rows from at
// least two suites, and carries a per-entry scale override plus an
// open-loop load entry (rate/arrival/duration).
func TestSampleScenarioSpec(t *testing.T) {
	sc, err := bdbench.LoadScenario("testdata/scenario.sample.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(bdbench.DefaultRegistry()); err != nil {
		t.Fatal(err)
	}
	suites := map[string]bool{}
	override := false
	for _, e := range sc.Entries {
		if e.Suite != "" {
			suites[e.Suite] = true
		}
		if e.Scale > 0 || e.Reps > 0 {
			override = true
		}
	}
	if len(suites) < 2 {
		t.Fatalf("sample spec mixes %d suites, want >= 2", len(suites))
	}
	if !override {
		t.Fatal("sample spec has no per-entry overrides")
	}
	loadEntry := false
	for _, e := range sc.Entries {
		if e.Rate > 0 && e.Arrival != "" && e.Duration > 0 {
			loadEntry = true
		}
	}
	if !loadEntry {
		t.Fatal("sample spec has no open-loop load entry")
	}
	// Round trip.
	raw, err := sc.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bdbench.ParseScenario(raw); err != nil {
		t.Fatal(err)
	}
}

func TestReporterForUnknownFormat(t *testing.T) {
	if _, err := bdbench.ReporterFor("yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
	for _, f := range bdbench.Formats() {
		r, err := bdbench.ReporterFor(f)
		if err != nil || r.Format() != f {
			t.Fatalf("format %s: %v %v", f, r, err)
		}
	}
}

func TestPrescriptionWorkloadPublic(t *testing.T) {
	names := bdbench.Prescriptions()
	if len(names) == 0 {
		t.Fatal("no prescriptions listed")
	}
	w, err := bdbench.NewPrescriptionWorkload(bdbench.PrescriptionConfig{
		Prescription: names[0],
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() == "" {
		t.Fatal("empty derived name")
	}
}

func TestDefaultRegistryInventory(t *testing.T) {
	reg := bdbench.DefaultRegistry()
	if len(reg.WorkloadNames()) < 20 {
		t.Fatalf("registry has %d workloads, want the full inventory", len(reg.WorkloadNames()))
	}
	for _, s := range []string{"HiBench", "YCSB", "BigDataBench", "bdbench (this work)"} {
		if _, ok := reg.Suite(s); !ok {
			t.Fatalf("suite %q missing from default registry", s)
		}
	}
}
